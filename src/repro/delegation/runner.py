"""Parallel, cached execution of the delegation-inference pipeline.

The Fig. 6 measurement runs steps (i)–(iv) on ~880 independent daily
RIBs and applies the cross-day consistency rule (v) once over the
whole window.  The per-day passes are embarrassingly parallel and
fully determined by the inference configuration plus the input data,
so this module provides:

- **day fan-out** across a :class:`concurrent.futures.
  ProcessPoolExecutor` — the date range is sharded into contiguous
  chunks, each worker builds its route stream once (from a picklable
  *stream factory*) and reuses it for every day of its shard, and the
  as2org snapshots are shipped to each worker once at pool start-up
  instead of being re-loaded per day;
- **an on-disk, content-addressed result cache** — one small binary
  file per (config, input, day), keyed on the :class:`~repro.
  delegation.inference.InferenceConfig` fields that affect steps
  (i)–(iv) plus fingerprints of the input stream and the as2org
  dataset.  The v2 payload is a fixed struct header (date + the five
  attrition counters) followed by flat little-endian ``(network,
  length, delegator, delegatee)`` quads — 16 bytes per delegation, no
  JSON or string parsing on the warm path.  The schema number is part
  of the content address, so bumping it turns every v1 entry into a
  clean miss (old ``.json`` entries are simply never probed).
  Re-running with an unchanged configuration is a pure cache read;
  ablation sweeps only recompute the days whose parameters actually
  changed (in particular, sweeping the consistency rule (v) never
  invalidates the per-day cache, because (v) runs after the fan-in).
  The kernel choice is deliberately *not* part of the key: both
  kernels produce byte-identical results, so their entries are
  interchangeable;
- **fan-in** in the parent: per-day results are merged in date order
  into one :class:`~repro.delegation.inference.InferenceResult`, and
  extension (v) is applied exactly once, so the output is
  byte-identical to the sequential
  :meth:`~repro.delegation.inference.DelegationInference.infer_range`.

Worker failures (including hard crashes that break the pool) surface
as :class:`~repro.errors.ReproError` instead of a hang or a raw
``BrokenProcessPool``.
"""

from __future__ import annotations

import concurrent.futures
import datetime
import hashlib
import itertools
import json
import logging
import os
import pathlib
import struct
import sys
import time
from array import array
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.asorg.as2org import As2OrgDataset
from repro.bgp.rib import PairTable
from repro.bgp.stream import RouteStream, date_range
from repro.delegation import delta as delta_mod
from repro.delegation.consistency import fill_gaps
from repro.delegation.inference import (
    KERNELS,
    DelegationInference,
    InferenceConfig,
    InferenceResult,
    record_pipeline_counters,
)
from repro.delegation.io import content_digest
from repro.delegation.model import DailyDelegations
from repro.errors import ReproError
from repro.netbase.lpm import day_shard_bounds, require_codec_itemsizes
from repro.netbase.prefix import IPv4Prefix
from repro.obs.metrics import NULL, MetricsRegistry
from repro.store.shard import (
    ShardStore,
    atomic_write_bytes,
    decode_shard_buffer,
    encode_shard_bytes,
    sweep_stale_temporaries,
)

require_codec_itemsizes()

logger = logging.getLogger(__name__)

#: Bump when the cache payload layout changes: old entries become
#: misses instead of being misread.  v2 switched the per-day payload
#: from JSON (string prefixes) to the compact binary quad encoding —
#: and because the schema participates in :func:`_cache_key`, every v1
#: entry hashes to a different address and is never even opened.
CACHE_SCHEMA = 2

#: Target number of chunks per worker — small enough to amortize task
#: dispatch, large enough to keep the pool busy when days vary in cost.
_CHUNKS_PER_WORKER = 4

#: A picklable zero-argument callable building the worker's stream.
StreamFactory = Callable[[], RouteStream]


@dataclass(frozen=True)
class WorldStreamFactory:
    """Build a :class:`RouteStream` from a scenario, in any process.

    The scenario config is a small frozen dataclass, so shipping the
    factory to a worker costs a few hundred bytes; the worker then
    regenerates its own deterministic world (topology, propagation,
    announcement source) exactly once and serves every day of its
    shard from it.
    """

    scenario: object  # repro.simulation.scenario.ScenarioConfig

    def __call__(self) -> RouteStream:
        from repro.simulation import World

        return World(self.scenario).stream()

    def fingerprint(self) -> str:
        """Input identity for the cache key.

        ``repr`` of a frozen dataclass is deterministic across
        processes (unlike ``hash``) and covers every generation
        parameter, including the seed.
        """
        text = f"world:{self.scenario!r}"
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ArchiveStreamFactory:
    """Build an archive-backed :class:`RouteStream` in any process.

    ``system_factory`` must itself be picklable and rebuild the
    :class:`~repro.bgp.collector.CollectorSystem` describing the
    monitor population (needed for the visibility denominator).
    """

    archive_dir: str
    system_factory: Callable[[], object]

    def __call__(self) -> RouteStream:
        return RouteStream(
            self.system_factory(), archive_dir=self.archive_dir
        )

    def fingerprint(self) -> str:
        """Hash of the archive's file names and sizes.

        Cheap (no content read) but catches added/removed days and
        rewritten files of different length; byte-level edits that
        preserve the size are considered the same input.
        """
        base = pathlib.Path(self.archive_dir)
        digest = hashlib.sha256(b"archive:")
        for path in sorted(base.rglob("*.jsonl")):
            stat = path.stat()
            entry = f"{path.relative_to(base)}:{stat.st_size}"
            digest.update(entry.encode("utf-8"))
        return digest.hexdigest()


@dataclass(frozen=True)
class RunnerStats:
    """What one :func:`run_inference` call actually did."""

    jobs: int
    days_total: int
    days_from_cache: int
    days_computed: int
    elapsed_seconds: float
    cache_dir: Optional[str] = None
    #: Incremental-mode accounting: journal-replayed days never touch
    #: the stream at all; fast-pathed days reused the previous day's
    #: delegation rows because their delta left the survivors alone.
    incremental: bool = False
    days_replayed: int = 0
    days_fastpathed: int = 0
    journal: Optional[str] = None
    #: The shard store directory, when the run was store-backed.
    store_dir: Optional[str] = None

    @property
    def cache_hit_rate(self) -> float:
        if self.days_total == 0:
            return 0.0
        return self.days_from_cache / self.days_total


# -- cache ----------------------------------------------------------------


def _cache_key(
    config: InferenceConfig,
    date: datetime.date,
    input_fingerprint: str,
    as2org_fingerprint: Optional[str],
) -> str:
    """Content address of one day's steps (i)–(iv) output.

    Deliberately excludes ``consistency_rule``: extension (v) is
    applied after the fan-in, so sweeping (M, N) reuses every per-day
    entry.  The as2org fingerprint only participates when extension
    (iv) is on — toggling datasets cannot invalidate runs that never
    consulted them.
    """
    return content_digest({
        "schema": CACHE_SCHEMA,
        "date": date.isoformat(),
        "visibility_threshold": repr(config.visibility_threshold),
        "drop_non_unique_origins": config.drop_non_unique_origins,
        "same_org_filter": config.same_org_filter,
        "sanitize": config.sanitize,
        "input": input_fingerprint,
        "as2org": as2org_fingerprint if config.same_org_filter else None,
    })


def _cache_path(cache_dir: pathlib.Path, key: str) -> pathlib.Path:
    # Two-level fan-out keeps directories small on multi-year sweeps.
    return cache_dir / key[:2] / f"{key}.bin"


#: v2 binary layout: header (magic, schema, date, the five attrition
#: counters, record count) followed by ``count`` little-endian u32
#: quads ``(network, length, delegator, delegatee)``.
_CACHE_MAGIC = b"RPD2"
_CACHE_HEADER = struct.Struct("<4sHHBB5QI")
_QUAD_BYTES = 16
_COUNTER_FIELDS = (
    "pairs_seen",
    "pairs_dropped_visibility",
    "pairs_dropped_origin",
    "delegations_dropped_same_org",
    "bogon_prefix",
)


def _quads_body_bytes(quads) -> bytes:
    """The flat little-endian u32 body for any quad sequence.

    Zero-copy fan-in views and shard-merged concatenations have the
    bytes (or their parts' bytes) already in payload order, so they
    re-encode without touching a single quad tuple.
    """
    if isinstance(quads, _QuadView):
        return quads.tobytes()
    if isinstance(quads, _ConcatQuads):
        return b"".join(_quads_body_bytes(part) for part in quads.parts)
    body = array("I")
    for quad in quads:
        body.extend(quad)
    if sys.byteorder != "little":
        body.byteswap()
    return body.tobytes()


def _encode_payload(payload: dict) -> bytes:
    """Serialize one day's payload into the v2 binary form."""
    date = payload["date"]
    counters = payload["counters"]
    quads = payload["delegations"]
    header = _CACHE_HEADER.pack(
        _CACHE_MAGIC, CACHE_SCHEMA, date.year, date.month, date.day,
        *(counters[name] for name in _COUNTER_FIELDS), len(quads),
    )
    return header + _quads_body_bytes(quads)


def _payload_to_bytes(payload: dict) -> bytes:
    """A payload's exact v2 bytes, reusing the raw view when present.

    Payloads decoded zero-copy out of a shared-memory segment or a
    result shard carry their backing bytes under ``"raw"``; writing
    them back to the cache is then a buffer copy, not a re-encode.
    """
    raw = payload.get("raw")
    if raw is not None:
        return bytes(raw)
    return _encode_payload(payload)


def _decode_payload(data: bytes) -> Optional[dict]:
    """Parse a v2 entry; ``None`` for anything torn or foreign."""
    if len(data) < _CACHE_HEADER.size:
        return None
    fields = _CACHE_HEADER.unpack_from(data)
    magic, schema, year, month, day = fields[:5]
    count = fields[10]
    if magic != _CACHE_MAGIC or schema != CACHE_SCHEMA:
        return None
    if len(data) != _CACHE_HEADER.size + count * _QUAD_BYTES:
        return None
    try:
        date = datetime.date(year, month, day)
    except ValueError:
        return None
    body = array("I")
    body.frombytes(data[_CACHE_HEADER.size:])
    if sys.byteorder != "little":
        body.byteswap()
    return {
        "date": date,
        "delegations": [
            tuple(body[i:i + 4]) for i in range(0, len(body), 4)
        ],
        "counters": dict(zip(_COUNTER_FIELDS, fields[5:10])),
    }


def _cache_read(
    path: pathlib.Path, metrics: MetricsRegistry = NULL
) -> Optional[dict]:
    """Load a payload, treating missing/corrupt entries as misses.

    A missing file is an ordinary miss; an unreadable or malformed one
    additionally bumps ``cache.malformed`` so ``repro history check``
    can flag corruption storms instead of them hiding in the logs.
    """
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return None
    except OSError:
        logger.warning("discarding unreadable cache entry %s", path)
        metrics.inc("cache.malformed")
        return None
    payload = _decode_payload(data)
    if payload is None:
        logger.warning("discarding malformed cache entry %s", path)
        metrics.inc("cache.malformed")
    return payload


def _cache_write(path: pathlib.Path, payload: dict) -> None:
    """Atomic write: concurrent runs never observe torn entries.

    Delegates to :func:`~repro.store.shard.atomic_write_bytes`, whose
    temporary name *appends* ``.tmp.<pid>`` to the full file name —
    ``with_suffix`` would replace ``.bin``, making two entries that
    differ only in suffix collide on one temporary, and crash leftovers
    under the replaced name would never match the entry glob.  Stale
    temporaries are swept when the cache is opened.
    """
    atomic_write_bytes(path, _payload_to_bytes(payload))


# -- zero-copy result fan-in ----------------------------------------------
#
# With ``fanin="shm"`` workers never pickle a result row back to the
# parent.  Each chunk encodes its payloads into the exact v2 cache
# bytes, packs them back-to-back into one POSIX shared-memory segment,
# and returns only ``("shm", name, size, entries)`` — a few dozen
# bytes per chunk.  The parent attaches the segment, **unlinks it
# immediately** (the mapping survives; the name cannot leak past a
# crash), and decodes each entry as a :class:`_QuadView` — a cast
# memoryview straight into the segment, never a list of tuples.
#
# Segment names carry a per-run prefix (parent pid + run counter), so
# the parent can sweep any segment a dying worker left behind: names
# are swept from ``/dev/shm`` after pool shutdown on every exit path
# (completion, worker failure, KeyboardInterrupt).  Creation happens
# in workers and unlink/sweep in the parent, which is why the resource
# tracker must be started *before* the pool forks — both sides then
# talk to the same tracker process and every register is matched by
# exactly one unregister (no spurious leak warnings at exit).
#
# When shared memory is unavailable (exotic platforms, exhausted
# ``/dev/shm``), workers silently fall back to returning pickled
# payload lists — ``fanin="pickle"`` forces that mode everywhere and
# reproduces the PR 8 transport exactly.

_FANIN_MODES = ("shm", "pickle")

_SHM_RUN_COUNTER = itertools.count()


def _shm_run_prefix() -> str:
    """A per-run segment-name prefix, unique across live parents.

    Short on purpose: POSIX shm names are capped at 31 characters on
    some platforms, and workers append their own pid + sequence.
    """
    return f"rpfi{os.getpid():x}g{next(_SHM_RUN_COUNTER):x}"


def _create_worker_segment(
    size: int, prefix: str
) -> Optional[shared_memory.SharedMemory]:
    """Create one result segment in a worker; ``None`` to fall back.

    The name embeds the worker pid plus a worker-local sequence, so
    collisions only happen against leftovers from a recycled pid —
    retried with the next sequence number rather than failed.
    """
    for _ in range(8):
        seq = _WORKER_STATE["shm_seq"] = (
            _WORKER_STATE.get("shm_seq", 0) + 1
        )
        name = f"{prefix}w{os.getpid():x}c{seq:x}"
        try:
            return shared_memory.SharedMemory(
                name=name, create=True, size=max(size, 1)
            )
        except FileExistsError:
            continue
        except OSError:
            return None
    return None


def _ship_payloads(payloads: List[dict]) -> Optional[tuple]:
    """Pack a chunk's payloads into one segment; ``None`` to fall back.

    Returns ``("shm", name, size, entries)`` where each entry is
    ``(offset, length, shard, shard_count)`` — everything the parent
    needs to rebuild zero-copy payload views in :func:`_receive_chunk`.
    """
    prefix = _WORKER_STATE.get("shm_prefix")
    if prefix is None:
        return None
    blobs = [_encode_payload(payload) for payload in payloads]
    total = sum(len(blob) for blob in blobs)
    segment = _create_worker_segment(total, prefix)
    if segment is None:
        return None
    try:
        entries = []
        offset = 0
        for payload, blob in zip(payloads, blobs):
            segment.buf[offset:offset + len(blob)] = blob
            entries.append((
                offset, len(blob),
                payload.get("shard", 0), payload.get("shard_count", 1),
            ))
            offset += len(blob)
        name = segment.name
    except BaseException:
        segment.unlink()
        raise
    finally:
        segment.close()
    return ("shm", name, total, entries)


def _sweep_segments(prefix: str) -> int:
    """Unlink any segment of this run still named in ``/dev/shm``.

    Normal operation leaves nothing here — the parent unlinks each
    segment the moment it attaches — so anything matching the prefix
    after pool shutdown was abandoned by a worker that died between
    creating its segment and returning the descriptor.  Unlinking via
    an attach also unregisters the name with the (shared) resource
    tracker, so the crash path stays warning-free too.
    """
    base = pathlib.Path("/dev/shm")
    if not base.is_dir():
        return 0
    removed = 0
    for path in base.glob(f"{prefix}*"):
        try:
            segment = shared_memory.SharedMemory(name=path.name)
        except (FileNotFoundError, OSError):
            continue
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
        segment.close()
        removed += 1
    if removed:
        logger.warning(
            "swept %d abandoned fan-in segment(s) with prefix %s",
            removed, prefix,
        )
    return removed


class _QuadView:
    """Zero-copy sequence view over a payload's flat u32 quad body.

    Satisfies everything the fan-in and the cache writer need from
    ``payload["delegations"]`` — ``len``, iteration, indexing,
    re-encoding — while the quads stay in the shared-memory segment
    (or result-shard map) they arrived in.  Little-endian hosts only;
    :func:`_decode_payload_view` falls back to a copying decode
    elsewhere.
    """

    __slots__ = ("_words",)

    def __init__(self, view: memoryview) -> None:
        self._words = view.cast("I")

    def __len__(self) -> int:
        return len(self._words) // 4

    def __getitem__(self, index: int) -> tuple:
        if index < 0:
            index += len(self)
        base = index * 4
        words = self._words
        return (
            words[base], words[base + 1],
            words[base + 2], words[base + 3],
        )

    def __iter__(self):
        words = self._words
        for base in range(0, len(words), 4):
            yield (
                words[base], words[base + 1],
                words[base + 2], words[base + 3],
            )

    def tobytes(self) -> bytes:
        return self._words.tobytes()


class _ConcatQuads:
    """One day's quads stitched from its per-/8 shard parts.

    The parts are concatenated lazily, in shard order; the cut
    invariant behind :func:`~repro.netbase.lpm.day_shard_bounds`
    guarantees that order equals the unsharded day's sorted quad
    sequence, so no merge pass (let alone a re-sort) ever runs.
    """

    __slots__ = ("parts", "_length")

    def __init__(self, parts: List) -> None:
        self.parts = parts
        self._length = sum(len(part) for part in parts)

    def __len__(self) -> int:
        return self._length

    def __iter__(self):
        return itertools.chain.from_iterable(self.parts)


def _decode_payload_view(view: memoryview) -> Optional[dict]:
    """Decode a v2 payload from a buffer without copying the quads.

    Identical validation to :func:`_decode_payload`, but the
    delegations come back as a :class:`_QuadView` into ``view`` and
    the payload keeps ``view`` under ``"raw"`` so a cache/result-shard
    write is a plain buffer copy.  Big-endian hosts take the copying
    decoder instead (the cast view would transpose every word).
    """
    if sys.byteorder != "little":
        return _decode_payload(bytes(view))
    if len(view) < _CACHE_HEADER.size:
        return None
    fields = _CACHE_HEADER.unpack_from(view)
    magic, schema, year, month, day = fields[:5]
    count = fields[10]
    if magic != _CACHE_MAGIC or schema != CACHE_SCHEMA:
        return None
    if len(view) != _CACHE_HEADER.size + count * _QUAD_BYTES:
        return None
    try:
        date = datetime.date(year, month, day)
    except ValueError:
        return None
    return {
        "date": date,
        "delegations": _QuadView(view[_CACHE_HEADER.size:]),
        "counters": dict(zip(_COUNTER_FIELDS, fields[5:10])),
        "raw": view,
    }


class _FanInReceiver:
    """Parent-side owner of every buffer a run's fan-in adopts.

    Adopting a segment attaches and *immediately unlinks* it — the
    mapping stays valid for this process, while the name disappears
    from ``/dev/shm`` before anything else can go wrong, so no exit
    path can leak a segment that reached the parent.  Views handed
    out for payloads are tracked and released (in reverse order)
    before their backing segments and maps are closed; stragglers —
    e.g. a caller still holding a decoded table — merely defer the
    memory to garbage collection, never the name.
    """

    def __init__(self) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        self._maps: List = []
        self._views: List[memoryview] = []
        self.shm_bytes = 0
        self.pickled_bytes = 0

    def adopt_segment(self, name: str, size: int) -> memoryview:
        segment = shared_memory.SharedMemory(name=name)
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
        self._segments.append(segment)
        self.shm_bytes += size
        return segment.buf

    def adopt_map(self, mapped) -> None:
        self._maps.append(mapped)

    def view(self, buffer, offset: int, length: int) -> memoryview:
        view = memoryview(buffer)[offset:offset + length]
        self._views.append(view)
        return view

    def track_view(self, view: memoryview) -> memoryview:
        self._views.append(view)
        return view

    def close(self) -> None:
        for view in reversed(self._views):
            try:
                view.release()
            except BufferError:
                pass  # a derived cast is still alive; freed at GC
        self._views.clear()
        for segment in self._segments:
            try:
                segment.close()
            except BufferError:
                # A caller still holds a view into this segment; the
                # mapping is freed once every view dies (the name is
                # already unlinked).  Detach the handles so the
                # object's __del__ does not retry the close and raise
                # the same BufferError unraisably mid-GC — the views
                # keep the mmap alive, and its dealloc unmaps quietly.
                segment._buf = None
                segment._mmap = None
        self._segments.clear()
        for mapped in self._maps:
            try:
                mapped.close()
            except (BufferError, ValueError):
                pass
        self._maps.clear()


def _receive_chunk(
    shipped: tuple, receiver: Optional["_FanInReceiver"]
) -> List[dict]:
    """Turn one worker chunk's return value into payload dicts.

    ``("payloads", [...])`` chunks (pickle mode, or a worker that
    could not get a segment) pass through, counted on the receiver's
    pickled-byte tally; ``("shm", ...)`` chunks are adopted and
    decoded zero-copy.
    """
    kind = shipped[0]
    if kind == "payloads":
        payloads = shipped[1]
        if receiver is not None:
            for payload in payloads:
                receiver.pickled_bytes += (
                    _CACHE_HEADER.size
                    + len(payload["delegations"]) * _QUAD_BYTES
                )
        return payloads
    _kind, name, size, entries = shipped
    buf = receiver.adopt_segment(name, size)
    payloads = []
    for offset, length, shard, shard_count in entries:
        view = receiver.view(buf, offset, length)
        payload = _decode_payload_view(view)
        if payload is None:
            raise ReproError(
                "zero-copy fan-in: malformed payload entry at offset "
                f"{offset} of segment {name}"
            )
        payload["shard"] = shard
        payload["shard_count"] = shard_count
        payloads.append(payload)
    return payloads


def _merge_day_payloads(parts: List[dict]) -> dict:
    """Merge one day's per-/8 shard payloads into the full day.

    Counters add exactly (every pair lands in exactly one shard) and
    the quads concatenate in shard order because every cut point
    satisfies the running-max invariant — checked here across part
    boundaries, so a violated invariant surfaces as an error instead
    of silently unsorted output.
    """
    parts = sorted(parts, key=lambda part: part["shard"])
    date = parts[0]["date"]
    counters = {name: 0 for name in _COUNTER_FIELDS}
    quad_parts = []
    last_packed = None
    for part in parts:
        for name in _COUNTER_FIELDS:
            counters[name] += part["counters"][name]
        quads = part["delegations"]
        if len(quads) == 0:
            continue
        first = quads[0]
        if last_packed is not None and (
            (first[0] << 6) | first[1]
        ) <= last_packed:
            raise ReproError(
                f"day-shard merge for {date.isoformat()}: shard "
                f"{part['shard']} overlaps its predecessor — the "
                "per-/8 cut invariant was violated"
            )
        tail = quads[len(quads) - 1]
        last_packed = (tail[0] << 6) | tail[1]
        quad_parts.append(quads)
    return {
        "date": date,
        "delegations": _ConcatQuads(quad_parts),
        "counters": counters,
    }


def _result_shard_read(
    store: ShardStore, key: str, receiver: "_FanInReceiver"
) -> Optional[dict]:
    """Probe the store's result-shard namespace for one day's payload.

    A hit maps the shard read-only and decodes it zero-copy — the
    warm path for ``--store`` sweeps skips both the kernel *and* the
    per-day cache read.  Malformed bytes degrade to a miss (counted),
    exactly like the input-shard namespace.
    """
    mapped = store.load_result(key)
    if mapped is None:
        return None
    view = memoryview(mapped)
    payload = _decode_payload_view(view)
    if payload is None:
        view.release()
        mapped.close()
        logger.warning(
            "discarding malformed result shard %s",
            store.result_path(key),
        )
        store.metrics.inc("store.malformed")
        store.metrics.inc("store.result_misses")
        return None
    receiver.adopt_map(mapped)
    receiver.track_view(view)
    store.metrics.inc("store.result_hits")
    return payload


# -- per-day computation (shared by workers and the in-process path) ------


class _DaySource:
    """Where a day's pair facts come from: shard store, then stream.

    With a :class:`~repro.store.shard.ShardStore` attached, every day
    is probed there first — a hit maps the shard read-only and returns
    a zero-copy table without ever building the stream (a fully warm
    sweep never regenerates the world at all); a miss lazily builds
    the stream once, aggregates the day, and writes the shard back so
    the next run (or another worker revisiting the day) maps it.

    Store-less sources reduce exactly to the previous behaviour: the
    stream is built once and every day reads from it.
    """

    def __init__(
        self,
        factory: StreamFactory,
        store: Optional[ShardStore] = None,
        metrics: MetricsRegistry = NULL,
    ) -> None:
        self._factory = factory
        self.store = store
        self._metrics = metrics
        self._stream: Optional[RouteStream] = None

    def set_metrics(self, metrics: MetricsRegistry) -> None:
        """Swap the registry (workers ship a fresh one per chunk)."""
        self._metrics = metrics
        if self.store is not None:
            self.store.metrics = metrics
        if self._stream is not None and hasattr(
            self._stream, "set_metrics"
        ):
            self._stream.set_metrics(metrics)

    def stream(self) -> RouteStream:
        if self._stream is None:
            self._stream = self._factory()
            if self._metrics.enabled and hasattr(
                self._stream, "set_metrics"
            ):
                self._stream.set_metrics(self._metrics)
        return self._stream

    def has_tables(self) -> bool:
        """Whether :meth:`table_on` can serve the columnar kernel."""
        return self.store is not None or hasattr(
            self.stream(), "pair_table_on"
        )

    def table_on(
        self, date: datetime.date
    ) -> Tuple["object", int]:
        """``(PairTable, total_monitors)`` for one day.

        Store hits come back mmap-backed (read-only, not picklable —
        see :meth:`~repro.bgp.rib.PairTable.materialize`); misses are
        computed from the stream and written through.
        """
        if self.store is not None:
            loaded = self.store.load(date)
            if loaded is not None:
                return loaded
        stream = self.stream()
        table = stream.pair_table_on(date)
        total_monitors = stream.monitor_count()
        if self.store is not None:
            self.store.write(date, table, total_monitors)
        return table, total_monitors

    def pairs_on(self, date: datetime.date) -> Tuple[dict, int]:
        """``(pairs dict, total_monitors)`` for the object kernel.

        Store-backed days rebuild the dict from the shard's columns —
        the aggregation preserved every fact the object-path filters
        read, so the results stay byte-identical.
        """
        if self.store is not None:
            table, total_monitors = self.table_on(date)
            return table.to_pairs(), total_monitors
        stream = self.stream()
        return stream.pairs_on(date), stream.monitor_count()


def _day_shard_table(
    source: _DaySource, date: datetime.date, shard_count: int
) -> Tuple[PairTable, int, List[Tuple[int, int]]]:
    """One day's full table plus its per-/8 cut bounds, memoized.

    Sub-day tasks for the same day frequently land on the same worker
    back-to-back, and re-mapping (or worse, re-aggregating) the day
    once per sub-task would dominate the sharded kernel work — so the
    worker keeps exactly one day's table and bounds around.
    """
    memo = _WORKER_STATE.get("day_memo")
    if memo is not None and memo[0] == (date, shard_count):
        return memo[1], memo[2], memo[3]
    table, total_monitors = source.table_on(date)
    bounds = day_shard_bounds(table.keys, shard_count)
    _WORKER_STATE["day_memo"] = (
        (date, shard_count), table, total_monitors, bounds
    )
    return table, total_monitors, bounds


def _compute_day_payload(
    source: _DaySource,
    inference: DelegationInference,
    date: datetime.date,
    metrics: MetricsRegistry = NULL,
    shard: int = 0,
    shard_count: int = 1,
) -> dict:
    """Steps (i)–(iv) for one day, as a numeric payload.

    The payload mirrors the v2 cache format: sorted ``(network,
    length, delegator, delegatee)`` quads plus the bookkeeping
    counters the sequential path accumulates.  Under the ``columnar``
    kernel the day never materializes per-record objects at all — the
    kernel's packed rows are reshaped straight into quads, straight
    off the shard mapping when the source is store-backed.

    With ``shard_count > 1`` the call computes only the day's
    ``shard``-th per-/8 slice (columnar kernel only): the fused filter
    kernel runs over ``table.slice(lo, hi)`` and the quads skip the
    sort entirely — kernel rows are key-ascending, and keys order
    exactly like ``(network, length, ...)`` tuples.  The parent
    reassembles the slices with :func:`_merge_day_payloads`.
    """
    scratch = InferenceResult(
        daily=DailyDelegations(), config=inference.config
    )
    if shard_count > 1:
        table, total_monitors, bounds = _day_shard_table(
            source, date, shard_count
        )
        low, high = bounds[shard]
        rows = inference._table_delegation_rows(
            table.slice(low, high), total_monitors, date, scratch,
            metrics=metrics,
        )
        quads = [
            (key >> 6, key & 0x3F, delegator, delegatee)
            for key, delegator, delegatee, _cover in rows
        ]
        return {
            "date": date,
            "delegations": quads,
            "counters": {
                "pairs_seen": scratch.pairs_seen,
                "pairs_dropped_visibility":
                    scratch.pairs_dropped_visibility,
                "pairs_dropped_origin": scratch.pairs_dropped_origin,
                "delegations_dropped_same_org":
                    scratch.delegations_dropped_same_org,
                "bogon_prefix": scratch.sanitize_stats.bogon_prefix,
            },
            "shard": shard,
            "shard_count": shard_count,
        }
    if inference.kernel == "columnar" and source.has_tables():
        table, total_monitors = source.table_on(date)
        rows = inference._table_delegation_rows(
            table, total_monitors, date, scratch, metrics=metrics,
        )
        quads = sorted(
            (key >> 6, key & 0x3F, delegator, delegatee)
            for key, delegator, delegatee, _cover in rows
        )
    else:
        pairs, total_monitors = source.pairs_on(date)
        delegations = inference.infer_day_from_pairs(
            pairs, total_monitors, date, scratch
        )
        quads = sorted(
            (
                d.prefix.network, d.prefix.length,
                d.delegator_asn, d.delegatee_asn,
            )
            for d in delegations
        )
    return {
        "date": date,
        "delegations": quads,
        "counters": {
            "pairs_seen": scratch.pairs_seen,
            "pairs_dropped_visibility": scratch.pairs_dropped_visibility,
            "pairs_dropped_origin": scratch.pairs_dropped_origin,
            "delegations_dropped_same_org":
                scratch.delegations_dropped_same_org,
            "bogon_prefix": scratch.sanitize_stats.bogon_prefix,
        },
    }


# -- worker side ----------------------------------------------------------

_WORKER_STATE: dict = {}


def _init_worker(
    factory: StreamFactory,
    config: InferenceConfig,
    as2org: Optional[As2OrgDataset],
    instrument: bool = False,
    trace: bool = False,
    profile: bool = False,
    kernel: str = "columnar",
    store_dir: Optional[str] = None,
    input_fp: Optional[str] = None,
    fanin: str = "pickle",
    shm_prefix: Optional[str] = None,
) -> None:
    """Pool initializer: runs once per worker process.

    The factory and the (potentially large) as2org dataset are
    transferred exactly once here; the stream itself is built lazily on
    the first chunk so that pool start-up stays cheap.  With
    ``store_dir`` set, the worker opens the shard store *by path* and
    maps its days read-only — the parent ships two short strings
    instead of pickling any table data, and a warm worker never builds
    its stream at all.  When ``instrument`` is set, each chunk records
    into a fresh :class:`MetricsRegistry` that is shipped back with
    its payloads and merged in the parent (registries are picklable by
    design); ``trace`` upgrades it to a :class:`~repro.obs.trace.
    TracingRegistry` on a per-worker lane, ``profile`` adds
    ``tracemalloc`` peak gauges.
    """
    _WORKER_STATE.clear()
    _WORKER_STATE["factory"] = factory
    _WORKER_STATE["config"] = config
    _WORKER_STATE["as2org"] = as2org
    _WORKER_STATE["instrument"] = instrument
    _WORKER_STATE["trace"] = trace
    _WORKER_STATE["profile"] = profile
    _WORKER_STATE["kernel"] = kernel
    _WORKER_STATE["store_dir"] = store_dir
    _WORKER_STATE["input_fp"] = input_fp
    _WORKER_STATE["fanin"] = fanin
    _WORKER_STATE["shm_prefix"] = shm_prefix


def _worker_registry() -> MetricsRegistry:
    """A fresh per-chunk registry matching the parent's capabilities.

    Tracing workers record onto their own lane (``worker-<pid>``), so
    the merged timeline shows which process ran which days; the lane
    is stable for the worker's lifetime while each chunk still ships
    an independent registry back for the order-insensitive fan-in.
    That fan-in carries latency *distributions* too: every worker
    timer records into a fixed-bucket
    :class:`~repro.obs.telemetry.HistogramStats`, and because the
    buckets are fixed the bucket-wise sum is associative and
    commutative — the merged p99 is independent of chunk scheduling,
    exactly like counters (pinned by
    ``tests/obs/test_telemetry_properties.py``).
    """
    if _WORKER_STATE.get("trace"):
        from repro.obs.trace import TracingRegistry

        registry: MetricsRegistry = TracingRegistry(
            lane=f"worker-{os.getpid()}"
        )
    else:
        registry = MetricsRegistry()
    if _WORKER_STATE.get("profile"):
        registry.enable_memory_profile()
    return registry


def _worker_source() -> _DaySource:
    """The worker's lazily-built day source (one per process).

    Store-backed workers open the shard store read-mostly by path —
    without the stale-temporary sweep, which only the parent runs
    (concurrent workers sweeping under each other would race).
    """
    source = _WORKER_STATE.get("source")
    if source is None:
        store = None
        if _WORKER_STATE.get("store_dir") is not None:
            store = ShardStore(
                _WORKER_STATE["store_dir"],
                _WORKER_STATE["input_fp"],
                sweep=False,
            )
        source = _DaySource(_WORKER_STATE["factory"], store)
        _WORKER_STATE["source"] = source
    return source


def _worker_run_chunk(
    tasks: Sequence[tuple],
) -> Tuple[tuple, Optional[MetricsRegistry]]:
    """Execute steps (i)–(iv) for one chunk of (sub-)day tasks.

    Each task is ``(date, shard, shard_count)`` — whole days when
    ``shard_count == 1``, per-/8 slices otherwise.  Returns either a
    ``("shm", ...)`` segment descriptor or ``("payloads", [...])``,
    plus the chunk's metrics registry (``None`` when the run is
    uninstrumented).
    """
    source = _worker_source()
    inference = _WORKER_STATE.get("inference")
    if inference is None:
        inference = DelegationInference(
            _WORKER_STATE["config"], _WORKER_STATE["as2org"],
            kernel=_WORKER_STATE.get("kernel", "columnar"),
        )
        _WORKER_STATE["inference"] = inference
    registry: Optional[MetricsRegistry] = None
    if _WORKER_STATE.get("instrument"):
        registry = _worker_registry()
        source.set_metrics(registry)
        materialized_before = PairTable.materialize_count
    payloads = []
    for date, shard, shard_count in tasks:
        if registry is None:
            payloads.append(_compute_day_payload(
                source, inference, date,
                shard=shard, shard_count=shard_count,
            ))
            continue
        # A span (not a bare observe) so the same per-day timing also
        # lands on the trace timeline and in the profile gauges; the
        # worker's span stack is empty, so the timer keeps its
        # historical name.  Sub-day slices time under their own name,
        # so traces show per-/8 lanes distinctly from whole days.
        span_name = (
            "runner.compute.dayshard" if shard_count > 1
            else "runner.compute.day"
        )
        with registry.span(span_name):
            payloads.append(_compute_day_payload(
                source, inference, date, registry,
                shard=shard, shard_count=shard_count,
            ))
    if registry is not None:
        registry.inc("runner.chunks")
        registry.inc(
            "pairtable.materialized",
            PairTable.materialize_count - materialized_before,
        )
    if _WORKER_STATE.get("fanin") == "shm":
        shipped = _ship_payloads(payloads)
        if shipped is not None:
            return shipped, registry
    return ("payloads", payloads), registry


def _worker_diff_chunk(
    dates: Sequence[datetime.date],
    prev_date: Optional[datetime.date],
) -> Tuple[List[tuple], Optional[MetricsRegistry]]:
    """Diff one shard of consecutive days against their predecessors.

    Each worker rebuilds its chunk's anchor day (``prev_date``; one
    duplicated table build per chunk — streams are deterministic, so
    the anchor equals the previous chunk's last table exactly; with a
    warm shard store the rebuild is a zero-copy map) and returns small
    ``("delta", date, PairDelta)`` items; the first chunk of a cold
    sweep hands the full seed table back via :func:`_seed_item` —
    by store reference or shared-memory segment when possible, only
    *materializing* (store-backed tables are views into this worker's
    private mapping and must never be pickled) as a last resort.  The
    parent applies the items in order through one
    :class:`~repro.delegation.delta.DeltaState`.
    """
    source = _worker_source()
    registry: Optional[MetricsRegistry] = None
    if _WORKER_STATE.get("instrument"):
        registry = _worker_registry()
        source.set_metrics(registry)
        materialized_before = PairTable.materialize_count
    span = registry.span if registry is not None else None
    items: List[tuple] = []
    if prev_date is None:
        prev_table, total_monitors = source.table_on(dates[0])
        items.append(
            _seed_item(source, dates[0], prev_table, total_monitors)
        )
        rest = dates[1:]
    else:
        prev_table, total_monitors = source.table_on(prev_date)
        rest = dates
    for date in rest:
        if span is not None:
            with span("runner.diff.day"):
                table, total_monitors = source.table_on(date)
                day_delta = delta_mod.diff_pair_tables(prev_table, table)
        else:
            table, total_monitors = source.table_on(date)
            day_delta = delta_mod.diff_pair_tables(prev_table, table)
        items.append(("delta", date, day_delta, total_monitors))
        prev_table = table
    if registry is not None:
        registry.inc("runner.chunks")
        registry.inc(
            "pairtable.materialized",
            PairTable.materialize_count - materialized_before,
        )
    return items, registry


def _seed_item(
    source: _DaySource,
    date: datetime.date,
    table: PairTable,
    total_monitors: int,
) -> tuple:
    """How a delta seed table travels back to the parent, cheapest first.

    With a store attached the table already lives there (a miss in
    :meth:`_DaySource.table_on` writes through), so the worker ships a
    date-sized reference and the parent re-maps the shard.  Otherwise
    the zero-copy transport serializes the table into a shared-memory
    segment in the RPSHARD3 layout; only when both are unavailable
    does the seed fall back to the PR 8 behaviour — a materialized,
    pickled table (visible as ``pairtable.materialized`` ticking up).
    """
    if source.store is not None:
        return ("seed_ref", date, total_monitors)
    if _WORKER_STATE.get("fanin") == "shm":
        prefix = _WORKER_STATE.get("shm_prefix")
        if prefix is not None:
            blob = encode_shard_bytes(date, table, total_monitors)
            segment = _create_worker_segment(len(blob), prefix)
            if segment is not None:
                try:
                    segment.buf[:len(blob)] = blob
                    name = segment.name
                except BaseException:
                    segment.unlink()
                    raise
                finally:
                    segment.close()
                return (
                    "seed_shm", date, name, len(blob), total_monitors
                )
    return ("seed", date, table.materialize(), total_monitors)


# -- parent side ----------------------------------------------------------


def _chunk(items: Sequence, size: int) -> List[List]:
    return [list(items[i:i + size]) for i in range(0, len(items), size)]


def _resolve_seed_item(
    item: tuple,
    store: Optional[ShardStore],
    receiver: Optional[_FanInReceiver],
) -> tuple:
    """Rehydrate a worker's seed hand-back into a plain seed item.

    ``seed_ref`` re-maps the day straight from the shard store;
    ``seed_shm`` adopts the worker's segment (unlinked on attach, like
    every fan-in segment) and rebuilds a buffer-backed table over it.
    Plain items pass through untouched.
    """
    kind = item[0]
    if kind == "seed_ref":
        _kind, date, total_monitors = item
        loaded = store.load(date) if store is not None else None
        if loaded is None:
            raise ReproError(
                "delta seed hand-back: the seed shard for "
                f"{date.isoformat()} vanished from the store"
            )
        table, total_monitors = loaded
        return ("seed", date, table, total_monitors)
    if kind == "seed_shm":
        _kind, date, name, size, _total_monitors = item
        buf = receiver.adopt_segment(name, size)
        view = receiver.view(buf, 0, size)
        decoded = decode_shard_buffer(view, expected_date=date)
        if decoded is None:
            raise ReproError(
                "delta seed hand-back: malformed shared-memory seed "
                f"segment for {date.isoformat()}"
            )
        table, total_monitors = decoded
        return ("seed", date, table, total_monitors)
    return item


def _diff_parallel(
    stream_factory: StreamFactory,
    config: InferenceConfig,
    as2org: Optional[As2OrgDataset],
    dates: Sequence[datetime.date],
    prev_date: Optional[datetime.date],
    jobs: int,
    metrics: MetricsRegistry = NULL,
    store: Optional[ShardStore] = None,
    fanin: str = "pickle",
    receiver: Optional[_FanInReceiver] = None,
) -> List[tuple]:
    """Fan day-over-day diffing out over a process pool.

    Chunks are contiguous; chunk *c* anchors on the last date of chunk
    *c − 1* (or ``prev_date`` / a fresh seed for the first), so every
    delta item still describes consecutive sweep days.  The items come
    back small — applying them stays sequential in the parent, where
    the single :class:`~repro.delegation.delta.DeltaState` lives.  The
    only potentially large item, the first chunk's seed table, takes
    the zero-copy route when ``fanin="shm"`` (see :func:`_seed_item`).
    """
    workers = min(jobs, len(dates))
    chunk_size = max(1, -(-len(dates) // (workers * _CHUNKS_PER_WORKER)))
    chunks = _chunk(dates, chunk_size)
    anchors: List[Optional[datetime.date]] = [prev_date] + [
        chunk[-1] for chunk in chunks[:-1]
    ]
    use_shm = fanin == "shm" and receiver is not None
    prefix = _shm_run_prefix() if use_shm else None
    if prefix is not None:
        # One tracker, owned by this process and inherited by every
        # worker: worker-side segment registrations and parent-side
        # unlinks must reach the same tracker, or each side's exit
        # prints spurious leak warnings.
        resource_tracker.ensure_running()
    items: List[tuple] = []
    executor = concurrent.futures.ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(
            stream_factory, config, as2org, metrics.enabled,
            getattr(metrics, "trace", None) is not None,
            metrics.memory_profiling,
            "columnar",
            str(store.directory) if store is not None else None,
            store.input_fingerprint if store is not None else None,
            "shm" if use_shm else "pickle",
            prefix,
        ),
    )
    try:
        futures = [
            executor.submit(_worker_diff_chunk, chunk, anchor)
            for chunk, anchor in zip(chunks, anchors)
        ]
        for future in futures:
            try:
                chunk_items, worker_registry = future.result()
            except ReproError:
                raise
            except Exception as exc:
                raise ReproError(
                    "delegation-delta worker failed: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            for item in chunk_items:
                items.append(_resolve_seed_item(item, store, receiver))
            if worker_registry is not None:
                metrics.merge(worker_registry)
                metrics.inc("runner.worker_registries_merged")
    finally:
        executor.shutdown(wait=True, cancel_futures=True)
        if prefix is not None:
            swept = _sweep_segments(prefix)
            if swept:
                metrics.inc("fanin.segments_swept", swept)
    return items


def _run_incremental(
    stream_factory: StreamFactory,
    config: InferenceConfig,
    as2org: Optional[As2OrgDataset],
    dates: Sequence[datetime.date],
    step_days: int,
    jobs: int,
    journal_dir: Optional[Union[str, pathlib.Path]],
    metrics: MetricsRegistry,
    store: Optional[ShardStore] = None,
    fanin: str = "pickle",
    receiver: Optional[_FanInReceiver] = None,
) -> Tuple[Dict[datetime.date, dict], dict]:
    """The incremental sweep: journal replay, then delta compute.

    Replay folds the journal's stored row deltas and counters — no
    stream build, no classification, no cover pass; only a partial
    replay (more days requested than journaled) additionally rebuilds
    the :class:`~repro.delegation.delta.DeltaState` from the pair
    deltas so computation can continue where the journal ends.  Every
    newly computed day is journaled *before* its payload is used, so a
    crash anywhere resumes from the last appended day.
    """
    info = {
        "days_replayed": 0,
        "days_fastpathed": 0,
        "days_computed": 0,
        "rows": [],
        "journal": None,
    }
    payloads: Dict[datetime.date, dict] = {}
    if not dates:
        return payloads, info

    journal: Optional[delta_mod.DeltaJournal] = None
    entries: List[dict] = []
    if journal_dir is not None:
        fingerprint = getattr(stream_factory, "fingerprint", None)
        if fingerprint is None:
            raise ReproError(
                "journaling requires a stream factory with a "
                "fingerprint() identifying its input data"
            )
        as2org_fp = (
            as2org.fingerprint() if config.same_org_filter else None
        )
        key = delta_mod.journal_key(
            config, fingerprint(), as2org_fp, dates[0], step_days
        )
        journal = delta_mod.DeltaJournal(
            delta_mod.journal_path(journal_dir, key)
        )
        info["journal"] = str(journal.path)
        entries = journal.read()

    state: Optional[delta_mod.DeltaState] = None
    rows: List[Tuple[int, int, int]] = []
    pairs_added = pairs_removed = 0
    usable = entries[:len(dates)]
    # Partial replays must hand a live DeltaState to the compute loop;
    # full replays never need one (rows and counters are stored).
    need_state = len(usable) < len(dates)

    with metrics.span("runner.incremental.replay"):
        replayed = 0
        for k, entry in enumerate(usable):
            if entry["date"] != dates[k].isoformat():
                # A valid chain with the wrong dates is a foreign
                # journal (the key should prevent this) — fall back to
                # computing, and never append behind its tail.
                logger.warning(
                    "delta journal %s: entry %d dated %s, expected "
                    "%s; ignoring the journal from here",
                    journal.path if journal else "<none>",
                    k + 1, entry["date"], dates[k].isoformat(),
                )
                journal = None
                need_state = True
                break
            if entry["kind"] == "seed":
                rows = [tuple(row) for row in entry["quads"]]
                if need_state:
                    state = delta_mod.DeltaState(
                        config, int(entry["total_monitors"])
                    )
                    state.seed(delta_mod.table_from_entry(entry))
            else:
                rows = delta_mod.fold_entry_rows(rows, entry)
                if need_state:
                    state.apply(delta_mod.delta_from_entry(entry))
            payloads[dates[k]] = {
                "date": dates[k],
                "delegations": delta_mod.rows_to_quads(rows),
                "counters": dict(entry["counters"]),
            }
            replayed += 1
        info["days_replayed"] = replayed
    # Appending must continue the on-disk serial sequence: a journal
    # holding *more* days than this narrower window stays read-only.
    writable = journal is not None and journal.serial == replayed

    remaining = list(dates[replayed:])
    info["days_computed"] = len(remaining)
    if remaining:
        serial = replayed
        with metrics.span("runner.incremental.compute"):
            if jobs > 1 and len(remaining) > 1:
                # Without a live state to continue from (cold start or
                # a foreign-journal fallback) the first worker chunk
                # must produce a fresh seed.
                prev_date = (
                    dates[replayed - 1]
                    if replayed and state is not None else None
                )
                items = _diff_parallel(
                    stream_factory, config, as2org, remaining,
                    prev_date, jobs, metrics,
                    store=store, fanin=fanin, receiver=receiver,
                )
            else:
                items = None
            if items is None:
                source = _DaySource(stream_factory, store, metrics)
                prev_table = (
                    state.to_table() if state is not None else None
                )

                def _iter_items():
                    nonlocal prev_table
                    for date in remaining:
                        table, total_monitors = source.table_on(date)
                        if prev_table is None:
                            yield ("seed", date, table, total_monitors)
                        else:
                            yield (
                                "delta", date,
                                delta_mod.diff_pair_tables(
                                    prev_table, table
                                ),
                                total_monitors,
                            )
                        prev_table = table

                items = _iter_items()
            for kind, date, obj, total_monitors in items:
                snapshot = (
                    as2org.snapshot_for(date)
                    if config.same_org_filter else None
                )
                serial += 1
                if kind == "seed":
                    state = delta_mod.DeltaState(config, total_monitors)
                    state.seed(obj)
                    new_rows, dropped, _fast = state.day_rows(snapshot)
                    counters = state.day_counters(dropped)
                    entry = delta_mod.seed_entry(
                        date, obj, total_monitors, counters, new_rows
                    )
                else:
                    state.apply(obj)
                    pairs_added += len(obj.upsert_keys)
                    pairs_removed += len(obj.removed)
                    new_rows, dropped, fast = state.day_rows(snapshot)
                    if fast:
                        info["days_fastpathed"] += 1
                    counters = state.day_counters(dropped)
                    prev_set = set(rows)
                    new_set = set(new_rows)
                    entry = delta_mod.delta_entry(
                        serial, date, obj, counters,
                        sorted(new_set - prev_set),
                        sorted(prev_set - new_set),
                    )
                rows = new_rows
                if writable:
                    journal.append(entry)
                payloads[date] = {
                    "date": date,
                    "delegations": delta_mod.rows_to_quads(rows),
                    "counters": counters,
                }
    info["rows"] = list(rows)
    metrics.inc("runner.delta.pairs_added", pairs_added)
    metrics.inc("runner.delta.pairs_removed", pairs_removed)
    metrics.inc("runner.delta.days_replayed", info["days_replayed"])
    metrics.inc("runner.delta.days_fastpathed", info["days_fastpathed"])
    return payloads, info


def run_inference(
    stream_factory: StreamFactory,
    start: datetime.date,
    end: datetime.date,
    config: Optional[InferenceConfig] = None,
    *,
    as2org: Optional[As2OrgDataset] = None,
    step_days: int = 1,
    jobs: Optional[int] = None,
    cache_dir: Optional[Union[str, pathlib.Path]] = None,
    metrics: MetricsRegistry = NULL,
    kernel: str = "columnar",
    incremental: bool = False,
    journal_dir: Optional[Union[str, pathlib.Path]] = None,
    store_dir: Optional[Union[str, pathlib.Path]] = None,
    fanin: str = "shm",
    day_shards: int = 1,
) -> InferenceResult:
    """Run the full pipeline over ``[start, end)``, in parallel.

    ``stream_factory`` must be a zero-argument callable returning the
    :class:`RouteStream` to read (e.g. :class:`WorldStreamFactory`);
    with ``jobs > 1`` it must be picklable, and with ``cache_dir`` set
    it must additionally expose a ``fingerprint()`` identifying the
    input data.  ``jobs=None`` uses ``os.cpu_count()``; ``jobs=1``
    never spawns a process pool — the fan-out runs inline in this
    process, so a single-job cold run costs no more than the
    sequential path.

    ``kernel`` picks the per-day implementation (``columnar`` — the
    packed-array fast path — or ``object``, the trie reference); both
    yield byte-identical results and share cache entries.

    ``metrics`` (when not the no-op default) receives nested stage
    spans (``runner.cache_probe`` / ``runner.compute`` /
    ``runner.fan_in`` / ``runner.consistency``), cache hit/miss
    counters, per-day compute timings (fanned back in from the worker
    registries), and the per-filter attrition counters shared with the
    sequential path.

    ``incremental=True`` switches the sweep to day-over-day delta
    inference (:mod:`repro.delegation.delta`): the first day seeds the
    filter state, every later day applies a
    :class:`~repro.delegation.delta.PairDelta` instead of re-running
    the full kernel, and the output stays byte-identical (the
    differential suite enforces it).  With ``journal_dir`` set the
    sweep is journaled under a content-addressed JSONL file there:
    re-runs replay the journal without touching the stream at all, a
    crashed sweep resumes after its last appended day, and a *longer*
    window extends the same journal.  Incremental sweeps ignore
    ``cache_dir`` (the journal subsumes the per-day cache) and
    ``kernel`` (the delta path has exactly one implementation).

    ``store_dir`` attaches the out-of-core shard store
    (:mod:`repro.store`): every day's aggregated pair table lives in a
    per-day memory-mapped shard file whose layout is the columnar
    layout, so warm days are zero-copy maps — no stream build, no
    aggregation, near-flat per-process memory peaks regardless of
    prefix count.  Workers open the store by path instead of receiving
    pickled inputs.  Unlike ``cache_dir`` (post-filter results, keyed
    on the config), the store holds *pre-filter inputs* keyed only on
    the input fingerprint, so one store serves every config, both
    kernels, and the incremental path — all byte-identical to the
    in-RAM paths.  The two compose: a store feeds computes, the cache
    skips them.

    ``fanin`` picks the worker→parent result transport.  The default
    ``"shm"`` serializes each chunk's payloads into one shared-memory
    segment in the exact v2 cache layout and ships a tiny descriptor;
    the parent decodes zero-copy views and never unpickles a result
    row.  With a store attached (and not incremental), ``"shm"`` also
    write-through-caches every computed day into the store's
    result-shard namespace, so warm sweeps map results directly.
    ``"pickle"`` forces the original pickled transport (and disables
    result shards) — the byte-identical baseline the fan-in benchmark
    compares against.  Segments are unlinked the moment the parent
    attaches them and swept by prefix after every pool shutdown, so
    no exit path (completion, worker crash, interrupt) leaks one.

    ``day_shards`` splits every computed day into that many per-/8
    sub-tasks (columnar kernel only): each runs the fused filter
    kernel over one top-octet slice of the day's key array, and the
    parent stitches the slices back with a deterministic k-way
    concatenation whose order the sorted-array invariant fixes — so
    one internet-scale day saturates the pool instead of one worker.
    Output stays byte-identical for any shard count.

    Returns an :class:`InferenceResult` byte-identical (in its
    ``daily`` delegations) to the sequential
    :meth:`DelegationInference.infer_range`, with ``runner_stats``
    describing the fan-out and cache behaviour (including, for
    incremental sweeps, replay/fast-path accounting) and — for
    incremental sweeps — a ``delta_handle`` the serving layer can
    keep applying new-day entries to.
    """
    began = time.perf_counter()
    config = config or InferenceConfig()
    if config.same_org_filter and as2org is None:
        raise ReproError("same_org_filter requires an as2org dataset")
    if kernel not in KERNELS:
        raise ReproError(
            f"unknown inference kernel {kernel!r} "
            f"(choose from {', '.join(KERNELS)})"
        )

    if journal_dir is not None and not incremental:
        raise ReproError("journal_dir requires incremental=True")
    if fanin not in _FANIN_MODES:
        raise ReproError(
            f"unknown fan-in mode {fanin!r} "
            f"(choose from {', '.join(_FANIN_MODES)})"
        )
    if day_shards < 1:
        raise ReproError("day_shards must be at least 1")
    if day_shards > 1 and kernel != "columnar":
        raise ReproError(
            "day_shards > 1 requires the columnar kernel: per-/8 cut "
            "points are defined on the packed key array"
        )
    if day_shards > 1 and incremental:
        raise ReproError(
            "day_shards cannot combine with incremental=True "
            "(the delta path diffs whole days)"
        )

    dates = list(date_range(start, end, step_days))
    resolved_jobs = jobs if jobs is not None else (os.cpu_count() or 1)
    if resolved_jobs < 1:
        raise ReproError("jobs must be at least 1")

    cache_base: Optional[pathlib.Path] = None
    input_fp = as2org_fp = None
    if incremental:
        cache_dir = None  # the journal subsumes the per-day cache
    if cache_dir is not None:
        fingerprint = getattr(stream_factory, "fingerprint", None)
        if fingerprint is None:
            raise ReproError(
                "caching requires a stream factory with a fingerprint() "
                "identifying its input data"
            )
        cache_base = pathlib.Path(cache_dir)
        sweep_stale_temporaries(
            cache_base, metrics=metrics, counter="cache.tmp_swept"
        )
        input_fp = fingerprint()
        if config.same_org_filter:
            assert as2org is not None
            as2org_fp = as2org.fingerprint()

    store: Optional[ShardStore] = None
    if store_dir is not None:
        fingerprint = getattr(stream_factory, "fingerprint", None)
        if fingerprint is None:
            raise ReproError(
                "the shard store requires a stream factory with a "
                "fingerprint() identifying its input data"
            )
        store = ShardStore(store_dir, fingerprint(), metrics=metrics)

    # The result-shard warm path needs the cache key even when no
    # cache_dir is configured; the store's fingerprint is the same
    # input fingerprint the cache would have computed.
    use_result_shards = (
        store is not None and fanin == "shm" and not incremental
    )
    if use_result_shards and input_fp is None:
        input_fp = store.input_fingerprint
        if config.same_org_filter:
            assert as2org is not None
            as2org_fp = as2org.fingerprint()

    metrics.inc("runner.days_total", len(dates))
    metrics.set_gauge("runner.jobs", resolved_jobs)
    materialized_before = PairTable.materialize_count
    receiver = _FanInReceiver()

    # Phases 1–2, incremental flavour: journal replay + delta compute.
    payload_by_date: Dict[datetime.date, dict] = {}
    missing: List[datetime.date] = []
    inc_info: Optional[dict] = None
    if incremental:
        with metrics.span("runner.incremental"):
            payload_by_date, inc_info = _run_incremental(
                stream_factory, config, as2org, dates, step_days,
                resolved_jobs, journal_dir, metrics, store,
                fanin=fanin, receiver=receiver,
            )
    # Phase 1: resolve result-shard and cache hits.
    elif cache_base is not None or use_result_shards:
        with metrics.span("runner.cache_probe"):
            for date in dates:
                key = _cache_key(config, date, input_fp, as2org_fp)
                payload = None
                if use_result_shards:
                    payload = _result_shard_read(store, key, receiver)
                if payload is None and cache_base is not None:
                    payload = _cache_read(
                        _cache_path(cache_base, key), metrics
                    )
                if payload is None:
                    missing.append(date)
                else:
                    payload_by_date[date] = payload
        metrics.inc("runner.cache.hits", len(dates) - len(missing))
        metrics.inc("runner.cache.misses", len(missing))
    elif not incremental:
        missing = list(dates)

    # Phase 2: compute the misses — fanned out or in-process.
    # (Incremental sweeps already produced every payload above.)
    if not incremental:
        computed: List[dict] = []
        with metrics.span("runner.compute"):
            if missing:
                if resolved_jobs > 1 and (
                    len(missing) > 1 or day_shards > 1
                ):
                    computed = _compute_parallel(
                        stream_factory, config, as2org, missing,
                        resolved_jobs, metrics, kernel, store,
                        fanin=fanin, day_shards=day_shards,
                        receiver=receiver,
                    )
                else:
                    # Single-job (or single-day, unsharded) runs stay
                    # entirely in this process: forking a pool to feed
                    # one worker can only add spawn and pickling
                    # overhead on top of the same sequential work.
                    source = _DaySource(stream_factory, store, metrics)
                    inference = DelegationInference(
                        config, as2org, kernel=kernel
                    )
                    for date in missing:
                        with metrics.span("day"):
                            computed.append(_compute_day_payload(
                                source, inference, date, metrics,
                            ))
        with metrics.span("runner.cache_write"):
            for payload in computed:
                date = payload["date"]
                payload_by_date[date] = payload
                if cache_base is not None or use_result_shards:
                    key = _cache_key(config, date, input_fp, as2org_fp)
                    # One encode serves both sinks; zero-copy payloads
                    # are a buffer copy here, never a quad walk.
                    data = _payload_to_bytes(payload)
                    if cache_base is not None:
                        atomic_write_bytes(
                            _cache_path(cache_base, key), data
                        )
                    if use_result_shards:
                        store.write_result(key, data)

    # Phase 3: fan-in, in date order, then extension (v) exactly once.
    # Consecutive days share almost all delegations, so prefixes are
    # interned: each distinct (network, length) is materialized once
    # and the same IPv4Prefix object is reused across the whole window.
    interned: Dict[int, IPv4Prefix] = {}

    def _decode(quad: tuple) -> tuple:
        network, length, delegator, delegatee = quad
        packed = (network << 6) | length
        prefix = interned.get(packed)
        if prefix is None:
            prefix = IPv4Prefix(network, length)
            interned[packed] = prefix
        return (prefix, delegator, delegatee)

    result = InferenceResult(daily=DailyDelegations(), config=config)
    delegations_total = 0
    with metrics.span("runner.fan_in"):
        for date in dates:
            payload = payload_by_date[date]
            result.observation_dates.append(date)
            counters = payload.get("counters", {})
            result.pairs_seen += counters.get("pairs_seen", 0)
            result.pairs_dropped_visibility += counters.get(
                "pairs_dropped_visibility", 0
            )
            result.pairs_dropped_origin += counters.get(
                "pairs_dropped_origin", 0
            )
            result.delegations_dropped_same_org += counters.get(
                "delegations_dropped_same_org", 0
            )
            result.sanitize_stats.bogon_prefix += counters.get(
                "bogon_prefix", 0
            )
            delegations_total += len(payload["delegations"])
            result.daily.record(
                date, (_decode(quad) for quad in payload["delegations"])
            )
    # Every quad is decoded into interned objects by now — release the
    # fan-in buffers (segments were unlinked at adoption; this frees
    # the memory) and surface the transport split.  A run that should
    # be zero-copy but shows ``fanin.pickled_kb`` (or a climbing
    # ``pairtable.materialized``) regressed to the copying transport —
    # exactly what ``repro history diff`` is meant to catch.
    metrics.set_gauge("fanin.shm_kb", receiver.shm_bytes // 1024)
    metrics.set_gauge(
        "fanin.pickled_kb", receiver.pickled_bytes // 1024
    )
    metrics.inc(
        "pairtable.materialized",
        PairTable.materialize_count - materialized_before,
    )
    receiver.close()
    # The serving layer re-runs rule (v) over the extended window on
    # every live apply, so it needs the pre-fill per-day record.
    base_daily = result.daily.copy() if incremental else None
    if config.consistency_rule is not None:
        with metrics.span("runner.consistency"):
            result.daily = fill_gaps(
                result.daily, config.consistency_rule,
                result.observation_dates, metrics=metrics,
            )
    record_pipeline_counters(metrics, result, delegations_total)

    if inc_info is not None:
        days_from_cache = inc_info["days_replayed"]
        days_computed = inc_info["days_computed"]
    else:
        days_from_cache = len(dates) - len(missing)
        days_computed = len(missing)
    result.runner_stats = RunnerStats(
        jobs=resolved_jobs,
        days_total=len(dates),
        days_from_cache=days_from_cache,
        days_computed=days_computed,
        elapsed_seconds=time.perf_counter() - began,
        cache_dir=str(cache_base) if cache_base is not None else None,
        incremental=incremental,
        days_replayed=(
            inc_info["days_replayed"] if inc_info is not None else 0
        ),
        days_fastpathed=(
            inc_info["days_fastpathed"] if inc_info is not None else 0
        ),
        journal=inc_info["journal"] if inc_info is not None else None,
        store_dir=str(store.directory) if store is not None else None,
    )
    if inc_info is not None:
        assert base_daily is not None
        result.delta_handle = delta_mod.LiveDeltaHandle(
            serial=len(dates),
            dates=list(dates),
            base_daily=base_daily,
            rows=inc_info["rows"],
            rule=config.consistency_rule,
        )
    metrics.observe("runner", result.runner_stats.elapsed_seconds)
    logger.info(
        "runner: %d days (%d %s, %d computed) with %d jobs in %.2fs",
        len(dates), days_from_cache,
        "replayed" if incremental else "cached", days_computed,
        resolved_jobs, result.runner_stats.elapsed_seconds,
    )
    return result


def _compute_parallel(
    stream_factory: StreamFactory,
    config: InferenceConfig,
    as2org: Optional[As2OrgDataset],
    missing: Sequence[datetime.date],
    jobs: int,
    metrics: MetricsRegistry = NULL,
    kernel: str = "columnar",
    store: Optional[ShardStore] = None,
    fanin: str = "pickle",
    day_shards: int = 1,
    receiver: Optional[_FanInReceiver] = None,
) -> List[dict]:
    """Fan the missing (sub-)day tasks out over a process pool.

    With ``day_shards > 1`` every day becomes that many per-/8 tasks,
    spread over the chunks like days are; a day's parts may come back
    from different workers in any order and are reassembled with
    :func:`_merge_day_payloads` as soon as the last one lands.  With
    an enabled ``metrics`` registry, every worker chunk returns its
    own registry alongside its results; they are merged here, so
    per-day timings and stream counters survive the fan-in.  A store
    is forwarded as ``(directory, fingerprint)`` strings — workers map
    shards themselves instead of the parent pickling inputs to them.
    """
    tasks = [
        (date, shard, day_shards)
        for date in missing
        for shard in range(day_shards)
    ]
    workers = min(jobs, len(tasks))
    chunk_size = max(
        1, -(-len(tasks) // (workers * _CHUNKS_PER_WORKER))
    )
    chunks = _chunk(tasks, chunk_size)
    use_shm = fanin == "shm" and receiver is not None
    prefix = _shm_run_prefix() if use_shm else None
    if prefix is not None:
        # See _diff_parallel: the tracker must pre-date the fork so
        # worker registers and parent unlinks meet in one process.
        resource_tracker.ensure_running()
    payloads: List[dict] = []
    pending: Dict[datetime.date, List[dict]] = {}
    executor = concurrent.futures.ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(
            stream_factory, config, as2org, metrics.enabled,
            # Workers mirror the parent's capabilities: a tracing
            # parent gets per-lane worker traces, a profiling parent
            # gets worker-side peak gauges (max-merged at fan-in).
            getattr(metrics, "trace", None) is not None,
            metrics.memory_profiling,
            kernel,
            str(store.directory) if store is not None else None,
            store.input_fingerprint if store is not None else None,
            "shm" if use_shm else "pickle",
            prefix,
        ),
    )
    try:
        futures = [
            executor.submit(_worker_run_chunk, chunk) for chunk in chunks
        ]
        for future in futures:
            try:
                shipped, worker_registry = future.result()
            except ReproError:
                raise
            except Exception as exc:
                raise ReproError(
                    "delegation-inference worker failed: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            for payload in _receive_chunk(shipped, receiver):
                if payload.get("shard_count", 1) > 1:
                    parts = pending.setdefault(payload["date"], [])
                    parts.append(payload)
                    if len(parts) == payload["shard_count"]:
                        payloads.append(_merge_day_payloads(parts))
                        del pending[payload["date"]]
                else:
                    payloads.append(payload)
            if worker_registry is not None:
                metrics.merge(worker_registry)
                metrics.inc("runner.worker_registries_merged")
        if pending:
            stuck = sorted(pending)[0]
            raise ReproError(
                "day-shard fan-in incomplete: "
                f"{stuck.isoformat()} received "
                f"{len(pending[stuck])} of {day_shards} parts"
            )
    finally:
        executor.shutdown(wait=True, cancel_futures=True)
        if prefix is not None:
            swept = _sweep_segments(prefix)
            if swept:
                metrics.inc("fanin.segments_swept", swept)
    return payloads
