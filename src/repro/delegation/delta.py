"""Incremental day-over-day delegation inference (NRTM-style deltas).

Consecutive daily RIBs share the overwhelming majority of their
(prefix, origin) pairs, yet the per-day kernel recomputes every day
from a full :class:`~repro.bgp.rib.PairTable`.  This module makes the
day-over-day change the unit of work instead:

- :func:`diff_pair_tables` — one sorted merge walk turns two
  consecutive days' packed tables into a :class:`PairDelta`
  (removed keys + upserted column entries); :func:`apply_delta` is its
  exact inverse, and a hypothesis suite pins
  ``apply(A, diff(A, B)) == B`` for arbitrary tables.
- :class:`DeltaState` — the visibility/bogon/unique-origin filter
  state as an explicit, mutable structure.  Seeding classifies every
  pair once; applying a delta re-classifies only the pairs that
  changed, keeping per-filter attrition counters and the sorted
  survivor columns incrementally in sync with what a full kernel run
  over the current table would produce.  Days whose delta leaves the
  survivors untouched reuse the previous day's delegation rows
  outright (the "fast path").
- :class:`DeltaJournal` — an append-only JSONL journal of per-day
  entries with monotonically increasing serials, modelled on the NRTM
  mirroring protocol: one ``seed`` entry (the full first day) followed
  by one ``delta`` entry per day.  Entries are content-addressed with
  the same canonical-JSON sha256 the v2 result cache uses
  (:func:`repro.delegation.io.content_digest`) and hash-chained, so a
  torn tail after a crash is detected and dropped, never replayed.
  Each entry also carries the day's attrition counters and the
  delegation-row delta, so a warm replay folds rows directly — no
  stream access, no classification, no cover pass.

The multi-day driver lives in :func:`repro.delegation.runner.
run_inference` (``incremental=True``); :class:`LiveDeltaHandle` is the
piece the serving layer (:mod:`repro.serve.engine`) keeps so a running
server can apply new-day entries in place.
"""

from __future__ import annotations

import datetime
import json
import logging
import pathlib
from array import array
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.bgp.rib import PairTable
from repro.delegation.inference import _BOGON_INTERVALS, InferenceConfig
from repro.delegation.io import canonical_json, content_digest
from repro.delegation.model import DailyDelegations
from repro.errors import ReproError
from repro.netbase.lpm import (
    _HOST_BITS,
    diff_sorted_keys,
    nearest_strict_covers,
    require_codec_itemsizes,
)

# The delta columns round-trip through array('Q')/('I') buffers whose
# widths the journal codec (and every PairDelta consumer) assumes.
require_codec_itemsizes()

logger = logging.getLogger(__name__)

#: Bump when the journal entry layout changes incompatibly.  The
#: schema participates in :func:`journal_key`, so old journals become
#: clean misses instead of being misread.
DELTA_SCHEMA = 1

#: The five per-day attrition counters, in cache-payload order.
COUNTER_FIELDS = (
    "pairs_seen",
    "pairs_dropped_visibility",
    "pairs_dropped_origin",
    "delegations_dropped_same_org",
    "bogon_prefix",
)

# Filter buckets a pair can land in — mirrors the fused filter order
# of the columnar kernel (bogon, then visibility, then unique-origin).
_SURVIVOR = 0
_BOGON = 1
_VISIBILITY = 2
_ORIGIN = 3

# The bogon intervals split into parallel tuples for bisection: the
# intervals are sorted and disjoint, so their end addresses ascend and
# the two-pointer predicate of the batch kernel becomes one bisect.
_BOGON_STARTS = tuple(first for first, _last in _BOGON_INTERVALS)
_BOGON_ENDS = tuple(last for _first, last in _BOGON_INTERVALS)


# -- the delta record -----------------------------------------------------


@dataclass
class PairDelta:
    """The change between two consecutive days' pair tables.

    ``removed`` holds packed keys present yesterday but gone today;
    the parallel ``upsert_*`` columns hold every pair that is new
    today *or* changed any observed fact (origin, uniqueness flag,
    monitor count).  Both key sequences are sorted ascending and
    disjoint — :func:`apply_delta` enforces the contract.
    """

    removed: "array" = field(default_factory=lambda: array("Q"))
    upsert_keys: "array" = field(default_factory=lambda: array("Q"))
    upsert_origins: "array" = field(default_factory=lambda: array("Q"))
    upsert_flags: "array" = field(default_factory=lambda: array("B"))
    upsert_monitors: "array" = field(default_factory=lambda: array("I"))

    def __len__(self) -> int:
        return len(self.removed) + len(self.upsert_keys)

    @property
    def is_empty(self) -> bool:
        return not self.removed and not self.upsert_keys


def diff_pair_tables(old: PairTable, new: PairTable) -> PairDelta:
    """``new`` relative to ``old``, in one O(n + m) merge walk."""
    removed_idx, added_idx, common = diff_sorted_keys(old.keys, new.keys)
    delta = PairDelta()
    delta.removed.extend(old.keys[i] for i in removed_idx)
    upserts: List[Tuple[int, int, int, int]] = [
        new.column_at(j) for j in added_idx
    ]
    for i, j in common:
        if (
            old.origins[i] != new.origins[j]
            or old.flags[i] != new.flags[j]
            or old.monitor_counts[i] != new.monitor_counts[j]
        ):
            upserts.append(new.column_at(j))
    upserts.sort()
    for key, origin, flags, monitors in upserts:
        delta.upsert_keys.append(key)
        delta.upsert_origins.append(origin)
        delta.upsert_flags.append(flags)
        delta.upsert_monitors.append(monitors)
    return delta


def apply_delta(table: PairTable, delta: PairDelta) -> PairTable:
    """The table ``delta`` was diffed *to* — exact inverse of
    :func:`diff_pair_tables`.

    One merge pass building fresh sorted columns; raises
    :class:`ReproError` when ``delta`` removes a pair the table does
    not hold (a foreign or corrupted delta must never half-apply).
    """
    out_keys = array("Q")
    out_origins = array("Q")
    out_flags = array("B")
    out_monitors = array("I")
    keys = table.keys
    origins = table.origins
    flags = table.flags
    monitors = table.monitor_counts
    removed = delta.removed
    up_keys = delta.upsert_keys
    i = u = r = 0
    n = len(keys)
    upsert_count = len(up_keys)
    removed_count = len(removed)
    while i < n or u < upsert_count:
        if u < upsert_count and (i >= n or up_keys[u] <= keys[i]):
            key = up_keys[u]
            if i < n and keys[i] == key:
                i += 1  # changed entry: the upsert replaces it
            out_keys.append(key)
            out_origins.append(delta.upsert_origins[u])
            out_flags.append(delta.upsert_flags[u])
            out_monitors.append(delta.upsert_monitors[u])
            u += 1
            continue
        key = keys[i]
        if r < removed_count and removed[r] == key:
            r += 1
            i += 1
            continue
        out_keys.append(key)
        out_origins.append(origins[i])
        out_flags.append(flags[i])
        out_monitors.append(monitors[i])
        i += 1
    if r != removed_count:
        raise ReproError(
            "delta removes pairs absent from the table "
            f"({removed_count - r} unmatched)"
        )
    return PairTable(out_keys, out_origins, out_flags, out_monitors)


# -- the journaled filter state -------------------------------------------


class DeltaState:
    """The fused filter state of one day, updated incrementally.

    Holds every pair of the current table in a dict plus the sorted
    survivor columns the Krenc–Feldmann cover pass consumes, and the
    per-bucket attrition counts.  Seeding classifies every pair once
    (same predicate order as the columnar kernel's fused pass);
    applying a :class:`PairDelta` re-classifies only the changed
    pairs, so a day whose RIBs barely moved costs work proportional to
    the movement — not to the table.
    """

    def __init__(self, config: InferenceConfig, total_monitors: int):
        if total_monitors <= 0:
            raise ReproError("total_monitors must be positive")
        self.config = config
        self.total_monitors = total_monitors
        self._needed = config.required_monitors(total_monitors)
        self._check_bogon = config.sanitize
        #: packed key -> (origin, flags, monitors), exactly the column
        #: values of the current table.
        self._entries: Dict[int, Tuple[int, int, int]] = {}
        self._survivor_keys: "array" = array("Q")
        self._survivor_origins: List[int] = []
        self._bogon = 0
        self._visibility = 0
        self._origin = 0
        # Cached cover-pass output for the fast path: valid while the
        # survivors and the as2org snapshot identity are unchanged.
        self._rows_dirty = True
        self._rows_cache: List[Tuple[int, int, int]] = []
        self._rows_dropped = 0
        self._rows_token: object = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def survivor_count(self) -> int:
        return len(self._survivor_keys)

    # -- classification (the fused filter, one pair at a time) ---------

    def _classify(self, key: int, flags: int, monitor_count: int) -> int:
        if self._check_bogon:
            network = key >> 6
            j = bisect_left(_BOGON_ENDS, network)
            if j < len(_BOGON_ENDS) and _BOGON_STARTS[j] <= (
                network | _HOST_BITS[key & 0x3F]
            ):
                return _BOGON
        if monitor_count < self._needed:
            return _VISIBILITY
        if not flags:
            return _ORIGIN
        return _SURVIVOR

    def _add(self, key: int, entry: Tuple[int, int, int]) -> None:
        bucket = self._classify(key, entry[1], entry[2])
        if bucket == _SURVIVOR:
            index = bisect_left(self._survivor_keys, key)
            self._survivor_keys.insert(index, key)
            self._survivor_origins.insert(index, entry[0])
        elif bucket == _BOGON:
            self._bogon += 1
        elif bucket == _VISIBILITY:
            self._visibility += 1
        else:
            self._origin += 1

    def _drop(self, key: int, entry: Tuple[int, int, int]) -> None:
        bucket = self._classify(key, entry[1], entry[2])
        if bucket == _SURVIVOR:
            index = bisect_left(self._survivor_keys, key)
            self._survivor_keys.pop(index)
            self._survivor_origins.pop(index)
        elif bucket == _BOGON:
            self._bogon -= 1
        elif bucket == _VISIBILITY:
            self._visibility -= 1
        else:
            self._origin -= 1

    # -- bulk seed / incremental apply ---------------------------------

    def seed(self, table: PairTable) -> None:
        """Load the first day's full table, classifying every pair."""
        self._entries = {}
        self._survivor_keys = array("Q")
        self._survivor_origins = []
        self._bogon = self._visibility = self._origin = 0
        keys = table.keys
        origins = table.origins
        flags = table.flags
        monitors = table.monitor_counts
        entries = self._entries
        # The table is key-sorted, so survivors append in sorted order.
        keep_key = self._survivor_keys.append
        keep_origin = self._survivor_origins.append
        for i, key in enumerate(keys):
            entry = (origins[i], flags[i], monitors[i])
            entries[key] = entry
            bucket = self._classify(key, entry[1], entry[2])
            if bucket == _SURVIVOR:
                keep_key(key)
                keep_origin(entry[0])
            elif bucket == _BOGON:
                self._bogon += 1
            elif bucket == _VISIBILITY:
                self._visibility += 1
            else:
                self._origin += 1
        self._rows_dirty = True

    def apply(self, delta: PairDelta) -> None:
        """Advance the state by one day's delta."""
        entries = self._entries
        for key in delta.removed:
            entry = entries.pop(key, None)
            if entry is None:
                raise ReproError(
                    f"delta removes unknown pair key {key}"
                )
            self._drop(key, entry)
        up_keys = delta.upsert_keys
        up_origins = delta.upsert_origins
        up_flags = delta.upsert_flags
        up_monitors = delta.upsert_monitors
        for u in range(len(up_keys)):
            key = up_keys[u]
            new_entry = (up_origins[u], up_flags[u], up_monitors[u])
            old_entry = entries.get(key)
            if old_entry is not None:
                self._drop(key, old_entry)
            entries[key] = new_entry
            self._add(key, new_entry)
        if not delta.is_empty:
            self._rows_dirty = True

    def to_table(self) -> PairTable:
        """The current table, rebuilt from state (resume handoff)."""
        keys = array("Q", sorted(self._entries))
        origins = array("Q", bytes(8 * len(keys)))
        flags = array("B", bytes(len(keys)))
        monitors = array("I", bytes(4 * len(keys)))
        for index, key in enumerate(keys):
            origin, flag, monitor_count = self._entries[key]
            origins[index] = origin
            flags[index] = flag
            monitors[index] = monitor_count
        return PairTable(keys, origins, flags, monitors)

    # -- per-day output -------------------------------------------------

    def day_rows(
        self, same_org_snapshot: object = None
    ) -> Tuple[List[Tuple[int, int, int]], int, bool]:
        """The day's delegation rows ``(packed_key, S, T)``, sorted.

        ``same_org_snapshot`` is the as2org snapshot for the day (or
        ``None`` with extension (iv) off); snapshot *identity* gates
        the fast path, so quarters where neither the survivors nor the
        snapshot changed skip the cover pass entirely.  Returns
        ``(rows, same_org_dropped, fast_pathed)``.
        """
        if (
            not self._rows_dirty
            and same_org_snapshot is self._rows_token
        ):
            return self._rows_cache, self._rows_dropped, True
        covers = nearest_strict_covers(self._survivor_keys)
        same_org = (
            same_org_snapshot.same_org
            if same_org_snapshot is not None else None
        )
        keys = self._survivor_keys
        origins = self._survivor_origins
        rows: List[Tuple[int, int, int]] = []
        dropped = 0
        for i, cover_index in enumerate(covers):
            if cover_index < 0:
                continue
            delegator = origins[cover_index]
            delegatee = origins[i]
            if delegator == delegatee:
                continue
            if same_org is not None and same_org(delegator, delegatee):
                dropped += 1
                continue
            rows.append((keys[i], delegator, delegatee))
        self._rows_cache = rows
        self._rows_dropped = dropped
        self._rows_token = same_org_snapshot
        self._rows_dirty = False
        return rows, dropped, False

    def day_counters(self, same_org_dropped: int) -> Dict[str, int]:
        """The day's attrition counters, matching the full kernel."""
        return {
            "pairs_seen": len(self._entries) - self._bogon,
            "pairs_dropped_visibility": self._visibility,
            "pairs_dropped_origin": self._origin,
            "delegations_dropped_same_org": same_org_dropped,
            "bogon_prefix": self._bogon,
        }


# -- journal entries ------------------------------------------------------


def rows_to_quads(
    rows: List[Tuple[int, int, int]]
) -> List[Tuple[int, int, int, int]]:
    """``(packed_key, S, T)`` rows → cache-payload quads.

    Rows arrive in packed-key order and keys are unique, so the output
    is already in the ``sorted()`` order the v2 cache payloads use.
    """
    return [
        (key >> 6, key & 0x3F, delegator, delegatee)
        for key, delegator, delegatee in rows
    ]


def seed_entry(
    date: datetime.date,
    table: PairTable,
    total_monitors: int,
    counters: Dict[str, int],
    rows: List[Tuple[int, int, int]],
) -> dict:
    """Serial-1 journal entry: the full first day."""
    return {
        "schema": DELTA_SCHEMA,
        "serial": 1,
        "kind": "seed",
        "date": date.isoformat(),
        "total_monitors": total_monitors,
        "pairs": [
            list(table.column_at(i)) for i in range(len(table))
        ],
        "counters": {name: counters[name] for name in COUNTER_FIELDS},
        "quads": [list(row) for row in rows],
    }


def delta_entry(
    serial: int,
    date: datetime.date,
    delta: PairDelta,
    counters: Dict[str, int],
    rows_added: List[Tuple[int, int, int]],
    rows_removed: List[Tuple[int, int, int]],
) -> dict:
    """One day's journal entry: pair delta + derived row delta.

    The pair delta is the ground truth (resume re-derives the filter
    state from it); the row delta and counters are carried so a pure
    warm replay never re-runs classification or the cover pass.
    """
    return {
        "schema": DELTA_SCHEMA,
        "serial": serial,
        "kind": "delta",
        "date": date.isoformat(),
        "removed": list(delta.removed),
        "upserts": [
            [
                delta.upsert_keys[u],
                delta.upsert_origins[u],
                delta.upsert_flags[u],
                delta.upsert_monitors[u],
            ]
            for u in range(len(delta.upsert_keys))
        ],
        "counters": {name: counters[name] for name in COUNTER_FIELDS},
        "rows_added": [list(row) for row in rows_added],
        "rows_removed": [list(row) for row in rows_removed],
    }


def table_from_entry(entry: dict) -> PairTable:
    """Rebuild the seed entry's full pair table."""
    pairs = entry["pairs"]
    keys = array("Q")
    origins = array("Q")
    flags = array("B")
    monitors = array("I")
    for key, origin, flag, monitor_count in pairs:
        keys.append(key)
        origins.append(origin)
        flags.append(flag)
        monitors.append(monitor_count)
    return PairTable(keys, origins, flags, monitors)


def delta_from_entry(entry: dict) -> PairDelta:
    """Rebuild a delta entry's :class:`PairDelta`."""
    delta = PairDelta()
    delta.removed.extend(entry["removed"])
    for key, origin, flag, monitor_count in entry["upserts"]:
        delta.upsert_keys.append(key)
        delta.upsert_origins.append(origin)
        delta.upsert_flags.append(flag)
        delta.upsert_monitors.append(monitor_count)
    return delta


def fold_entry_rows(
    rows: List[Tuple[int, int, int]], entry: dict
) -> List[Tuple[int, int, int]]:
    """Apply one delta entry's row delta to the previous day's rows."""
    removed = {tuple(row) for row in entry["rows_removed"]}
    out = [row for row in rows if row not in removed]
    out.extend(tuple(row) for row in entry["rows_added"])
    out.sort()
    return out


# -- the journal ----------------------------------------------------------


def journal_key(
    config: InferenceConfig,
    input_fingerprint: str,
    as2org_fingerprint: Optional[str],
    start: datetime.date,
    step_days: int,
) -> str:
    """Content address of one sweep's journal.

    Same exclusions as the per-day cache key: the consistency rule (v)
    runs after the fan-in and the kernel choice cannot change output.
    The window *start* and stride participate (every entry's date is
    determined by them), but the *end* deliberately does not — growing
    the window appends to the same journal instead of starting over.
    """
    return content_digest({
        "schema": DELTA_SCHEMA,
        "visibility_threshold": repr(config.visibility_threshold),
        "drop_non_unique_origins": config.drop_non_unique_origins,
        "same_org_filter": config.same_org_filter,
        "sanitize": config.sanitize,
        "input": input_fingerprint,
        "as2org": (
            as2org_fingerprint if config.same_org_filter else None
        ),
        "start": start.isoformat(),
        "step_days": step_days,
    })


def journal_path(
    base_dir: Union[str, pathlib.Path], key: str
) -> pathlib.Path:
    # Same two-level fan-out as the v2 cache directory.
    return pathlib.Path(base_dir) / key[:2] / f"{key}.jsonl"


def _chain_digest(prev_digest: Optional[str], body: str) -> str:
    import hashlib

    text = (prev_digest or "") + "\n" + body
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class DeltaJournal:
    """Append-only JSONL journal of per-day delta entries.

    Each line is ``{"serial": n, "digest": d, "body": e}`` where ``e``
    is the canonical-JSON entry and ``d`` chains it to the previous
    line's digest — the NRTM idea of serial-numbered, append-only
    mirror records, content-addressed like the v2 cache.  Reading
    validates the chain and stops at the first torn or foreign line;
    appending truncates that invalid tail first, so a crash mid-write
    costs at most one day of recompute.
    """

    def __init__(self, path: Union[str, pathlib.Path]):
        self.path = pathlib.Path(path)
        self._loaded = False
        self._valid_bytes = 0
        self._tail_digest: Optional[str] = None
        self._serial = 0

    @property
    def serial(self) -> int:
        """Highest valid serial on disk (0 for a fresh journal)."""
        if not self._loaded:
            self.read()
        return self._serial

    def read(self) -> List[dict]:
        """Every valid entry, in serial order.

        Validation is structural (outer JSON, digest chain, schema,
        contiguous serials); the first failure ends the valid prefix
        — everything before it is trusted, everything after ignored.
        """
        entries: List[dict] = []
        offset = 0
        prev: Optional[str] = None
        try:
            handle = open(self.path, "rb")
        except FileNotFoundError:
            self._loaded = True
            self._valid_bytes = 0
            self._tail_digest = None
            self._serial = 0
            return entries
        with handle:
            for raw in handle:
                entry = self._validate_line(raw, prev, len(entries) + 1)
                if entry is None:
                    logger.warning(
                        "delta journal %s: dropping invalid tail at "
                        "byte %d", self.path, offset,
                    )
                    break
                entries.append(entry)
                prev = entry["_digest"]
                offset += len(raw)
        for entry in entries:
            del entry["_digest"]
        self._loaded = True
        self._valid_bytes = offset
        self._tail_digest = prev
        self._serial = len(entries)
        return entries

    @staticmethod
    def _validate_line(
        raw: bytes, prev: Optional[str], expected_serial: int
    ) -> Optional[dict]:
        try:
            outer = json.loads(raw.decode("utf-8"))
            body = outer["body"]
            digest = outer["digest"]
        except (ValueError, KeyError, TypeError):
            return None
        if not isinstance(body, str) or not isinstance(digest, str):
            return None
        if _chain_digest(prev, body) != digest:
            return None
        try:
            entry = json.loads(body)
        except ValueError:
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("schema") != DELTA_SCHEMA:
            return None
        if entry.get("serial") != expected_serial:
            return None
        expected_kind = "seed" if expected_serial == 1 else "delta"
        if entry.get("kind") != expected_kind:
            return None
        entry["_digest"] = digest
        return entry

    def append(self, entry: dict) -> None:
        """Chain-and-append one entry; flushed before returning.

        The entry's serial must continue the on-disk sequence — the
        runner appends each day *before* using its payload, so a crash
        between append and use is replayed, never lost.
        """
        if not self._loaded:
            self.read()
        if entry["serial"] != self._serial + 1:
            raise ReproError(
                f"journal serial gap: on-disk {self._serial}, "
                f"appending {entry['serial']}"
            )
        body = canonical_json(entry)
        digest = _chain_digest(self._tail_digest, body)
        line = json.dumps(
            {"serial": entry["serial"], "digest": digest, "body": body}
        ) + "\n"
        data = line.encode("utf-8")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "ab") as handle:
            if handle.tell() != self._valid_bytes:
                handle.truncate(self._valid_bytes)
            handle.write(data)
            handle.flush()
        self._valid_bytes += len(data)
        self._tail_digest = digest
        self._serial = entry["serial"]


# -- the serving-layer handle ---------------------------------------------


@dataclass
class LiveDeltaHandle:
    """Everything a running server needs to apply new-day entries.

    Produced by the incremental runner alongside its
    :class:`~repro.delegation.inference.InferenceResult`:
    ``base_daily`` is the per-day record *before* consistency-rule gap
    filling (rule (v) must be re-run over the extended window after
    each apply), ``rows`` the latest day's delegation rows the next
    entry's row delta folds into.
    """

    serial: int
    dates: List[datetime.date]
    base_daily: DailyDelegations
    rows: List[Tuple[int, int, int]]
    rule: Optional[object] = None
