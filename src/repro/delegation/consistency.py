"""The "(M, N)" consistency-rule family (appendix A).

Rules have the form: *if a delegation is observed on day X and on day
X+M, it also exists for all but N days in between.*  Two operations:

- :func:`evaluate_rule` — measure a rule's **fail rate** on observed
  delegation timelines (the fraction of (X, X+M) pairs whose gap
  exceeds N missing days), used on RPKI data to pick (M=10, N=0)
  (Fig. 5);
- :func:`fill_gaps` — apply a rule to BGP delegations (extension (v)):
  gaps up to M days are filled **unless** a *conflicting* delegation
  (same prefix, different delegatee) was observed in between.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.delegation.model import DailyDelegations, DelegationKey
from repro.obs.metrics import NULL, MetricsRegistry


@dataclass(frozen=True)
class ConsistencyRule:
    """One rule: observations M days apart imply ≤ N missing days."""

    max_span_days: int = 10   # M
    allowed_missing: int = 0  # N

    def __post_init__(self) -> None:
        if self.max_span_days < 1:
            raise ValueError("M must be at least one day")
        if self.allowed_missing < 0:
            raise ValueError("N cannot be negative")


def evaluate_rule(
    timelines: Mapping[tuple, Sequence[datetime.date]],
    rule: ConsistencyRule,
    observation_dates: Sequence[datetime.date],
) -> Tuple[int, int]:
    """Count (premises, violations) of ``rule`` over ``timelines``.

    ``timelines`` maps a delegation key to the sorted dates it was
    observed; ``observation_dates`` is the full grid of days data
    exists for (gaps in the *data* must not count as absences).

    A premise is any pair of observations of the same delegation
    exactly M days apart (with data available for every day between);
    it is violated when the delegation is absent on more than N of the
    in-between days.
    """
    date_index = {date: i for i, date in enumerate(sorted(observation_dates))}
    sorted_dates = sorted(observation_dates)
    premises = 0
    violations = 0
    span = datetime.timedelta(days=rule.max_span_days)
    for dates in timelines.values():
        present = set(dates)
        for start in dates:
            end = start + span
            if end not in present:
                continue
            # Require full data coverage for the in-between days.
            start_i = date_index.get(start)
            end_i = date_index.get(end)
            if start_i is None or end_i is None:
                continue
            between = sorted_dates[start_i + 1:end_i]
            if any(
                (day - start).days < 0 or (end - day).days < 0
                for day in between
            ):  # pragma: no cover - sorted grid guarantees order
                continue
            expected_days = rule.max_span_days - 1
            if len(between) != expected_days:
                continue  # data gaps: not a valid premise
            premises += 1
            missing = sum(1 for day in between if day not in present)
            if missing > rule.allowed_missing:
                violations += 1
    return premises, violations


def fail_rate(
    timelines: Mapping[tuple, Sequence[datetime.date]],
    rule: ConsistencyRule,
    observation_dates: Sequence[datetime.date],
) -> float:
    """The rule's fail rate (violations / premises); 0.0 if no premise."""
    premises, violations = evaluate_rule(timelines, rule, observation_dates)
    if premises == 0:
        return 0.0
    return violations / premises


def _conflict_days_by_prefix(
    timelines: Mapping[DelegationKey, Sequence[datetime.date]],
) -> Dict[object, Dict[int, Set[datetime.date]]]:
    """prefix → delegatee → observation days, for *ambiguous* prefixes.

    A conflict can only arise on a prefix delegated to more than one
    delegatee somewhere in the window; those are rare (MOAS announcements
    are dropped in step (iii)), so restricting the map to them keeps
    :func:`fill_gaps` from indexing every (day, delegation) pair.
    """
    delegatees: Dict[object, Set[int]] = {}
    for prefix, _delegator, delegatee in timelines:
        delegatees.setdefault(prefix, set()).add(delegatee)
    ambiguous = {p for p, seen in delegatees.items() if len(seen) > 1}
    conflict_map: Dict[object, Dict[int, Set[datetime.date]]] = {}
    for (prefix, _delegator, delegatee), dates in timelines.items():
        if prefix in ambiguous:
            conflict_map.setdefault(prefix, {}).setdefault(
                delegatee, set()
            ).update(dates)
    return conflict_map


def fill_gaps(
    daily: DailyDelegations,
    rule: ConsistencyRule,
    observation_dates: Sequence[datetime.date],
    *,
    metrics: MetricsRegistry = NULL,
) -> DailyDelegations:
    """Apply extension (v): fill on-off gaps up to M days.

    For every delegation key observed on two days at most M apart, the
    key is added to all observation days in between — unless any
    in-between day shows the same prefix delegated to a *different*
    delegatee (a conflicting delegation), which invalidates the
    presumption.

    Only days present in ``observation_dates`` are filled: the rule
    reconstructs what measurement gaps hid, it does not invent data for
    days nobody measured.

    ``metrics`` receives ``pipeline.consistency.fills`` (key-days
    added) and ``pipeline.consistency.conflicts`` (gaps left open
    because of a rival delegation); both are deterministic functions
    of the input, so parallel and sequential runs report the same.
    """
    sorted_dates = sorted(observation_dates)
    date_index = {date: i for i, date in enumerate(sorted_dates)}
    timelines = daily.timeline()
    conflicts = _conflict_days_by_prefix(timelines)
    filled = daily.copy()
    fill_count = 0
    conflict_count = 0
    for key, dates in timelines.items():
        prefix, _delegator, delegatee = key
        rivals = conflicts.get(prefix)
        for first, second in zip(dates, dates[1:]):
            gap_days = (second - first).days
            if gap_days <= 1 or gap_days > rule.max_span_days:
                continue
            start_i = date_index.get(first)
            end_i = date_index.get(second)
            if start_i is None or end_i is None:
                continue
            between = sorted_dates[start_i + 1:end_i]
            if rivals is not None:
                between_set = set(between)
                conflicted = any(
                    other != delegatee
                    and not days.isdisjoint(between_set)
                    for other, days in rivals.items()
                )
                if conflicted:
                    conflict_count += 1
                    continue
            for day in between:
                filled.record(day, [key])
            fill_count += len(between)
    metrics.inc("pipeline.consistency.fills", fill_count)
    metrics.inc("pipeline.consistency.conflicts", conflict_count)
    return filled
