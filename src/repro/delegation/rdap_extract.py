"""The RDAP pipeline (§4, "RDAP-delegations").

From a WHOIS snapshot:

1. select the delegation-related inetnums (``SUB-ALLOCATED PA`` and
   ``ASSIGNED PA``),
2. drop blocks smaller than /24 (the paper does this to "minimize the
   load on RIPE's RDAP interface" — the fraction dropped, 91.4 % of
   ASSIGNED PA in June 2020, is itself a reported statistic),
3. query RDAP for each remaining block to obtain its ``parentHandle``,
4. drop intra-organization pairs (same registrant or administrator as
   the parent).

Fault tolerance: the sweep takes one optional
:class:`~repro.ingest.journal.SweepJournal` — every definitive lookup
outcome is journaled as it completes, so a crashed or throttled-out
sweep resumes without re-querying — and one optional
:class:`~repro.ingest.quarantine.ErrorPolicy`: in ``QUARANTINE`` mode
a block whose query gives up (retries exhausted) or whose payload is
malformed is set aside in the report and the sweep continues; failed
blocks are *not* journaled, so a resume retries them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.delegation.model import RdapDelegation
from repro.errors import RdapError, ReproError
from repro.ingest.journal import SweepJournal
from repro.ingest.quarantine import ErrorPolicy, QuarantineReport
from repro.netbase.prefix import IPv4Prefix
from repro.obs.metrics import NULL, MetricsRegistry
from repro.rdap.client import RdapClient
from repro.whois.inetnum import InetnumObject, InetnumStatus


@dataclass
class RdapExtractionStats:
    """Counters along the pipeline — several are paper statistics."""

    sub_allocated_total: int = 0
    assigned_total: int = 0
    smaller_than_24: int = 0
    queried: int = 0
    no_parent: int = 0
    intra_org: int = 0
    delegations: int = 0
    quarantined: int = 0
    replayed: int = 0

    @property
    def assigned_smaller_than_24_fraction(self) -> float:
        """Paper: 91.4 % of ASSIGNED PA entries are smaller than /24."""
        if self.assigned_total == 0:
            return 0.0
        return self.smaller_than_24 / self.assigned_total


def extract_rdap_delegations(
    inetnums: Iterable[InetnumObject],
    client: RdapClient,
    *,
    min_block_length: int = 24,
    stats: Optional[RdapExtractionStats] = None,
    journal: Optional[SweepJournal] = None,
    policy: ErrorPolicy = ErrorPolicy.STRICT,
    report: Optional[QuarantineReport] = None,
    metrics: MetricsRegistry = NULL,
) -> List[RdapDelegation]:
    """Run the §4 RDAP pipeline over snapshot ``inetnums``.

    ``client`` resolves parent handles (one RDAP query per candidate).
    Parent registration data comes from the *server's* database — the
    measurement only trusts what the public interface exposes.

    With a ``journal``, candidates whose key (the inetnum range) was
    already journaled replay their recorded outcome — counted in
    ``stats`` exactly as a live lookup, so a resumed sweep's stats and
    delegations match an uninterrupted one — without touching the
    client.

    ``metrics`` (no-op default) records one ``rdap.sweep.lookup``
    timing per live query — against a throttled endpoint the sweep is
    the §4 pipeline's long pole, and per-lookup spans make the
    backoff stalls visible on the ``--trace-out`` timeline.
    """
    if stats is None:
        stats = RdapExtractionStats()
    # Index parent handle -> (org, admin) learned from RDAP responses,
    # so intra-org checks reuse queries instead of re-asking.
    parent_entities: Dict[str, Dict[str, str]] = {}
    delegations: List[RdapDelegation] = []
    with metrics.span("rdap.sweep"):
        for index, obj in enumerate(inetnums):
            if obj.status is InetnumStatus.SUB_ALLOCATED_PA:
                stats.sub_allocated_total += 1
            elif obj.status is InetnumStatus.ASSIGNED_PA:
                stats.assigned_total += 1
                if obj.smaller_than(min_block_length):
                    stats.smaller_than_24 += 1
                    continue
            else:
                continue
            if obj.status is InetnumStatus.SUB_ALLOCATED_PA and (
                obj.smaller_than(min_block_length)
            ):
                stats.smaller_than_24 += 1
                continue

            key = obj.range_text()
            if journal is not None and key in journal:
                stats.replayed += 1
                _replay_outcome(
                    journal.get(key) or {}, stats, delegations
                )
                continue

            stats.queried += 1
            try:
                # Nested span: records under ``rdap.sweep.lookup``,
                # with the ``.failed`` counter marking quarantined
                # lookups on the timeline.
                with metrics.span("lookup"):
                    kind, delegation = _process_candidate(
                        obj, client, parent_entities
                    )
            except RdapError as exc:
                # The client exhausted its retries (persistent
                # throttling or timeouts).  Not journaled: a resume
                # retries the block.
                if policy is ErrorPolicy.STRICT:
                    raise
                stats.quarantined += 1
                if report is not None:
                    report.add(
                        "rdap", index, f"{key}: {exc}", kind="rdap"
                    )
                continue
            except (AttributeError, KeyError, TypeError, ValueError) as exc:
                # Structurally malformed RDAP payload.
                if policy is ErrorPolicy.STRICT:
                    raise RdapError(
                        f"malformed RDAP payload for {key}: {exc}"
                    ) from exc
                stats.quarantined += 1
                if report is not None:
                    report.add(
                        "rdap", index,
                        f"{key}: malformed payload: {exc}", kind="rdap",
                    )
                continue

            if kind == "no_parent":
                stats.no_parent += 1
            elif kind == "intra_org":
                stats.intra_org += 1
            else:
                stats.delegations += 1
                assert delegation is not None
                delegations.append(delegation)
            if journal is not None:
                journal.record(key, _outcome_json(kind, delegation))
    return delegations


def _process_candidate(
    obj: InetnumObject,
    client: RdapClient,
    parent_entities: Dict[str, Dict[str, str]],
) -> Tuple[str, Optional[RdapDelegation]]:
    """One RDAP lookup plus the §4 filters; returns (outcome, record)."""
    probe = obj.primary_prefix()
    response = client.lookup_ip(probe)
    if response is None:
        return "no_parent", None
    parent_handle = response.get("parentHandle")
    if parent_handle is None:
        return "no_parent", None
    parent_handle = str(parent_handle)

    # Resolve the parent's registrant/admin (cached per handle).
    entities = parent_entities.get(parent_handle)
    if entities is None:
        parent_prefixes = _handle_to_prefixes(parent_handle)
        parent_response = (
            client.lookup_ip(parent_prefixes[0])
            if parent_prefixes
            else None
        )
        entities = _entity_roles(parent_response)
        parent_entities[parent_handle] = entities

    child_entities = _entity_roles(response)
    if _same_org(child_entities, entities):
        return "intra_org", None
    return "delegation", RdapDelegation(
        child_first=obj.first,
        child_last=obj.last,
        child_handle=str(response.get("handle", obj.handle)),
        parent_handle=parent_handle,
        status=obj.status.value,
    )


def _outcome_json(
    kind: str, delegation: Optional[RdapDelegation]
) -> dict:
    outcome: dict = {"kind": kind}
    if delegation is not None:
        outcome.update(
            child_first=delegation.child_first,
            child_last=delegation.child_last,
            child_handle=delegation.child_handle,
            parent_handle=delegation.parent_handle,
            status=delegation.status,
        )
    return outcome


def _replay_outcome(
    outcome: dict,
    stats: RdapExtractionStats,
    delegations: List[RdapDelegation],
) -> None:
    """Apply one journaled outcome as if the lookup had just run."""
    stats.queried += 1
    kind = outcome.get("kind")
    if kind == "no_parent":
        stats.no_parent += 1
    elif kind == "intra_org":
        stats.intra_org += 1
    elif kind == "delegation":
        stats.delegations += 1
        delegations.append(
            RdapDelegation(
                child_first=int(outcome["child_first"]),
                child_last=int(outcome["child_last"]),
                child_handle=str(outcome["child_handle"]),
                parent_handle=str(outcome["parent_handle"]),
                status=str(outcome["status"]),
            )
        )
    else:
        raise ReproError(f"corrupt journal outcome: {outcome!r}")


def _entity_roles(response: Optional[Dict[str, object]]) -> Dict[str, str]:
    """Extract role → handle from an RDAP response's entities."""
    roles: Dict[str, str] = {}
    if response is None:
        return roles
    for entity in response.get("entities", []):  # type: ignore[union-attr]
        for role in entity.get("roles", []):
            roles[str(role)] = str(entity.get("handle", ""))
    return roles


def _same_org(child: Dict[str, str], parent: Dict[str, str]) -> bool:
    """Paper's intra-org test: same registrant *or* same administrator."""
    if not child or not parent:
        return False
    registrant_match = (
        "registrant" in child
        and child.get("registrant") == parent.get("registrant")
    )
    admin_match = (
        "administrative" in child
        and child.get("administrative") == parent.get("administrative")
    )
    return registrant_match or admin_match


def _handle_to_prefixes(handle: str) -> List[IPv4Prefix]:
    """Parse a ``"a.b.c.d - e.f.g.h"`` handle into CIDR prefixes."""
    from repro.netbase.prefix import parse_address

    if "-" not in handle:
        return []
    first_text, _, last_text = handle.partition("-")
    try:
        first = parse_address(first_text.strip())
        last = parse_address(last_text.strip())
        return IPv4Prefix.from_range(first, last)
    except ReproError:
        return []
