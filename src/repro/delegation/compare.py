"""BGP-vs-RDAP delegation comparison (§4).

The paper's headline §4 numbers — BGP-delegations cover only ~1.85 %
of RDAP-delegated IPs, while RDAP-delegations cover ~65.7 % of
BGP-delegated IPs — are mutual IP-level coverage fractions between the
two delegation sets.  Neither source alone captures the market.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.delegation.model import RdapDelegation
from repro.netbase.prefix import IPv4Prefix
from repro.netbase.prefixset import address_count, coverage_fraction


@dataclass(frozen=True)
class CoverageReport:
    """Mutual coverage between BGP and RDAP delegations."""

    bgp_delegations: int
    rdap_delegations: int
    bgp_addresses: int
    rdap_addresses: int
    #: Fraction of RDAP-delegated addresses also covered by BGP
    #: delegations (~1.85 % in the paper).
    bgp_over_rdap: float
    #: Fraction of BGP-delegated addresses also covered by RDAP
    #: delegations (~65.7 % in the paper).
    rdap_over_bgp: float

    def summary_lines(self) -> List[str]:
        return [
            f"BGP delegations:   {self.bgp_delegations:8d} "
            f"({self.bgp_addresses} addresses)",
            f"RDAP delegations:  {self.rdap_delegations:8d} "
            f"({self.rdap_addresses} addresses)",
            f"BGP covers {self.bgp_over_rdap:7.2%} of RDAP-delegated IPs",
            f"RDAP covers {self.rdap_over_bgp:6.2%} of BGP-delegated IPs",
        ]


def compare_delegations(
    bgp_prefixes: Iterable[IPv4Prefix],
    rdap_delegations: Iterable[RdapDelegation],
) -> CoverageReport:
    """Compute the mutual coverage report.

    ``bgp_prefixes`` are the delegated prefixes (P') inferred from BGP
    on the comparison date; ``rdap_delegations`` come from
    :func:`~repro.delegation.rdap_extract.extract_rdap_delegations`.
    """
    bgp = list(set(bgp_prefixes))
    rdap_list = list(rdap_delegations)
    rdap_prefixes: List[IPv4Prefix] = []
    for delegation in rdap_list:
        rdap_prefixes.extend(delegation.prefixes())
    return CoverageReport(
        bgp_delegations=len(bgp),
        rdap_delegations=len(rdap_list),
        bgp_addresses=address_count(bgp),
        rdap_addresses=address_count(rdap_prefixes),
        bgp_over_rdap=coverage_fraction(rdap_prefixes, bgp),
        rdap_over_bgp=coverage_fraction(bgp, rdap_prefixes),
    )
