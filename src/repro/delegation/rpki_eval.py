"""Fig. 5: consistency-rule validation on RPKI delegations.

The appendix evaluates the (M, N) rule family against delegations
inferred from RPKI snapshots, where ROA continuity makes presence
observable day by day.  Expected shape (paper):

- fail rate < 5 % at (M=10, N=0) — the rule the paper adopts,
- the fail rate never reaches 30 % even at M=100,
- at M=90, ~90 % of delegations are visible except for ≤ 3 days
  (N=3 fail rate ≈ 10 %).
"""

from __future__ import annotations

import concurrent.futures
import datetime
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.delegation.consistency import ConsistencyRule, evaluate_rule
from repro.errors import ReproError
from repro.rpki.database import RoaDatabase


@dataclass(frozen=True)
class RuleEvaluation:
    """Fail rate of one (M, N) rule on the RPKI timelines."""

    max_span_days: int     # M
    allowed_missing: int   # N
    premises: int
    violations: int

    @property
    def fail_rate(self) -> float:
        if self.premises == 0:
            return 0.0
        return self.violations / self.premises


def _is_daily_grid(dates: Sequence[datetime.date]) -> bool:
    return all(
        (later - earlier).days == 1
        for earlier, later in zip(dates, dates[1:])
    )


def _evaluate_daily_fast(
    timelines: Dict[tuple, Sequence[datetime.date]],
    dates: Sequence[datetime.date],
    span_values: Sequence[int],
    missing_values: Sequence[int],
) -> List[RuleEvaluation]:
    """O(1)-per-premise sweep on a contiguous daily grid.

    Presence prefix sums turn "how many absences between X and X+M"
    into a subtraction, so the whole (M, N) family is evaluated in one
    pass per M — this is what makes the Fig. 5 sweep (tens of rules on
    hundreds of multi-year timelines) run in seconds.
    """
    index = {date: i for i, date in enumerate(dates)}
    n = len(dates)
    spans = sorted(span_values)
    missing_sorted = sorted(missing_values)
    premises = {(m, k): 0 for m in spans for k in missing_sorted}
    violations = {(m, k): 0 for m in spans for k in missing_sorted}
    for observed in timelines.values():
        present = bytearray(n)
        for date in observed:
            i = index.get(date)
            if i is not None:
                present[i] = 1
        prefix = [0] * (n + 1)
        running = 0
        for i in range(n):
            running += present[i]
            prefix[i + 1] = running
        present_indices = [i for i in range(n) if present[i]]
        for span in spans:
            for i in present_indices:
                j = i + span
                if j >= n or not present[j]:
                    continue
                absent = (span - 1) - (prefix[j] - prefix[i + 1])
                for k in missing_sorted:
                    premises[(span, k)] += 1
                    if absent > k:
                        violations[(span, k)] += 1
    return [
        RuleEvaluation(
            max_span_days=span,
            allowed_missing=k,
            premises=premises[(span, k)],
            violations=violations[(span, k)],
        )
        for span in spans
        for k in missing_sorted
    ]


def _evaluate_span_subset(
    timelines: Dict[tuple, Sequence[datetime.date]],
    observation_dates: Sequence[datetime.date],
    span_values: Sequence[int],
    missing_values: Sequence[int],
) -> List[RuleEvaluation]:
    """Evaluate a subset of M values (the parallel unit of work)."""
    if _is_daily_grid(observation_dates):
        return _evaluate_daily_fast(
            timelines, observation_dates, span_values, missing_values
        )
    evaluations: List[RuleEvaluation] = []
    for span in sorted(span_values):
        for missing in sorted(missing_values):
            rule = ConsistencyRule(span, missing)
            premises, violations = evaluate_rule(
                timelines, rule, observation_dates
            )
            evaluations.append(
                RuleEvaluation(
                    max_span_days=span,
                    allowed_missing=missing,
                    premises=premises,
                    violations=violations,
                )
            )
    return evaluations


def evaluate_rules_on_rpki(
    database: RoaDatabase,
    span_values: Sequence[int],
    missing_values: Sequence[int] = (0, 1, 2, 3),
    *,
    jobs: Optional[int] = None,
) -> List[RuleEvaluation]:
    """Evaluate every (M, N) combination on the database's delegations.

    Returns one :class:`RuleEvaluation` per combination, ordered by
    (M, N) — the Fig. 5 data: fail rate on the y-axis against M on the
    x-axis, one curve per N.  Daily snapshot grids take a prefix-sum
    fast path; sparse grids fall back to the generic evaluator.

    ``jobs`` fans the M sweep out over worker processes (the timelines
    are extracted once in the parent and shipped to each worker once);
    ``jobs=None`` or ``1`` evaluates in-process, and ``jobs=0`` means
    "use every core" (``os.cpu_count()``).  Results are ordered
    identically either way.
    """
    timelines = database.delegation_timeline()
    observation_dates = database.dates()
    spans = sorted(span_values)
    if jobs == 0:
        jobs = os.cpu_count() or 1
    resolved_jobs = min(jobs or 1, len(spans))
    if resolved_jobs <= 1:
        return _evaluate_span_subset(
            timelines, observation_dates, spans, missing_values
        )
    # Round-robin sharding balances the load: the cost of one M value
    # scales with its premise count, which shrinks as M grows.
    shards = [spans[i::resolved_jobs] for i in range(resolved_jobs)]
    evaluations: List[RuleEvaluation] = []
    executor = concurrent.futures.ProcessPoolExecutor(
        max_workers=resolved_jobs
    )
    try:
        futures = [
            executor.submit(
                _evaluate_span_subset,
                timelines, observation_dates, shard, missing_values,
            )
            for shard in shards
        ]
        for future in futures:
            try:
                evaluations.extend(future.result())
            except ReproError:
                raise
            except Exception as exc:
                raise ReproError(
                    "rule-evaluation worker failed: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
    finally:
        # Not the context manager: on error or interrupt its plain
        # shutdown would still drain every queued shard before this
        # process can exit; cancelling strands no workers on a sweep
        # that already failed.
        executor.shutdown(wait=True, cancel_futures=True)
    evaluations.sort(key=lambda e: (e.max_span_days, e.allowed_missing))
    return evaluations


def fail_rate_curves(
    evaluations: Sequence[RuleEvaluation],
) -> Dict[int, List[Tuple[int, float]]]:
    """Group evaluations into N → [(M, fail_rate), ...] plot series."""
    curves: Dict[int, List[Tuple[int, float]]] = {}
    for evaluation in evaluations:
        curves.setdefault(evaluation.allowed_missing, []).append(
            (evaluation.max_span_days, evaluation.fail_rate)
        )
    for series in curves.values():
        series.sort()
    return curves
