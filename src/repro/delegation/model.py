"""Delegation record types.

A *BGP delegation* :math:`P'_{ST}` exists when delegator AS *S*
originates prefix *P* and delegatee AS *T* originates a more-specific
sub-prefix *P'* (§4).  An *RDAP delegation* is a registered
parent/child inetnum pair with different registrants.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.netbase.prefix import IPv4Prefix

#: The identity of a BGP delegation across days.
DelegationKey = Tuple[IPv4Prefix, int, int]


@dataclass(frozen=True)
class BgpDelegation:
    """One inferred BGP delegation on one day."""

    prefix: IPv4Prefix          # P': the delegated, more-specific prefix
    delegator_asn: int          # S: originates the covering prefix P
    delegatee_asn: int          # T: originates P'
    covering_prefix: IPv4Prefix  # P

    def key(self) -> DelegationKey:
        """Day-independent identity (P', S, T)."""
        return (self.prefix, self.delegator_asn, self.delegatee_asn)

    @property
    def delegated_addresses(self) -> int:
        return self.prefix.num_addresses


class DailyDelegations:
    """Per-day sets of delegation keys, plus address accounting."""

    def __init__(self) -> None:
        self._by_date: Dict[datetime.date, Set[DelegationKey]] = {}

    def record(
        self, date: datetime.date, keys: Iterable[DelegationKey]
    ) -> None:
        self._by_date.setdefault(date, set()).update(keys)

    def on(self, date: datetime.date) -> Set[DelegationKey]:
        return set(self._by_date.get(date, set()))

    def dates(self) -> List[datetime.date]:
        return sorted(self._by_date)

    def count_on(self, date: datetime.date) -> int:
        return len(self._by_date.get(date, ()))

    def addresses_on(self, date: datetime.date) -> int:
        """Distinct delegated addresses on ``date``.

        Delegation keys can share prefixes (the same P' delegated by
        different inferred delegators on MOAS-ish corner cases); we
        count distinct prefixes.
        """
        from repro.netbase.prefixset import address_count

        prefixes = {key[0] for key in self._by_date.get(date, ())}
        return address_count(prefixes)

    def prefixes_on(self, date: datetime.date) -> Set[IPv4Prefix]:
        return {key[0] for key in self._by_date.get(date, ())}

    def length_distribution(self, date: datetime.date) -> Dict[int, float]:
        """Fraction of delegations per prefix length on ``date``."""
        keys = self._by_date.get(date, set())
        if not keys:
            return {}
        counts: Dict[int, int] = {}
        for prefix, _s, _t in keys:
            counts[prefix.length] = counts.get(prefix.length, 0) + 1
        total = len(keys)
        return {length: counts[length] / total for length in sorted(counts)}

    def timeline(self) -> Dict[DelegationKey, List[datetime.date]]:
        """Key → sorted dates on which the delegation was observed."""
        timeline: Dict[DelegationKey, List[datetime.date]] = {}
        for date in self.dates():
            for key in self._by_date[date]:
                timeline.setdefault(key, []).append(date)
        return timeline

    def copy(self) -> "DailyDelegations":
        duplicate = DailyDelegations()
        for date, keys in self._by_date.items():
            duplicate.record(date, keys)
        return duplicate

    def __len__(self) -> int:
        return len(self._by_date)


@dataclass(frozen=True)
class RdapDelegation:
    """One registered delegation extracted via RDAP (§4)."""

    child_first: int
    child_last: int
    child_handle: str
    parent_handle: str
    status: str

    @property
    def addresses(self) -> int:
        return self.child_last - self.child_first + 1

    def prefixes(self) -> List[IPv4Prefix]:
        return IPv4Prefix.from_range(self.child_first, self.child_last)
