"""Persistence for inference results.

Long inference runs (Fig. 6 spans 883 days) should not have to be
recomputed to be re-analyzed.  The JSONL format stores one day per
line — date plus the delegation keys observed — and round-trips
losslessly through :class:`~repro.delegation.model.DailyDelegations`.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import pathlib
from typing import List, Union

from repro.delegation.model import DailyDelegations, DelegationKey
from repro.errors import DatasetError
from repro.netbase.prefix import IPv4Prefix


def canonical_json(payload: object) -> str:
    """The one canonical JSON form content addresses are taken over.

    Sorted keys, no whitespace: the same logical payload always
    serializes to the same bytes, across processes and Python
    versions.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_digest(payload: object) -> str:
    """sha256 hex digest of the canonical JSON form of ``payload``.

    The shared content-address primitive: the runner's per-day v2
    cache keys and the delta journal's file names and hash-chained
    entry digests (:mod:`repro.delegation.delta`) all address content
    through here, so one definition of "same payload" governs every
    on-disk artifact.
    """
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()


def key_to_json(key: DelegationKey) -> List[object]:
    """``(P', S, T)`` → JSON-safe ``[str(P'), S, T]``.

    Shared by the JSONL result files here and the per-day cache
    payloads in :mod:`repro.delegation.runner`.
    """
    prefix, delegator, delegatee = key
    return [str(prefix), delegator, delegatee]


def key_from_json(raw: object) -> DelegationKey:
    """Inverse of :func:`key_to_json`; raises :class:`DatasetError`."""
    if not isinstance(raw, list) or len(raw) != 3:
        raise DatasetError(f"malformed delegation key: {raw!r}")
    prefix_text, delegator, delegatee = raw
    return (
        IPv4Prefix.parse(str(prefix_text)),
        int(delegator),
        int(delegatee),
    )

# Backwards-compatible aliases (pre-runner internal names).
_key_to_json = key_to_json
_key_from_json = key_from_json


def write_daily_delegations(
    daily: DailyDelegations,
    path: Union[str, pathlib.Path],
) -> str:
    """Write one JSON object per day; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for date in daily.dates():
            keys = sorted(
                key_to_json(key) for key in daily.on(date)
            )
            handle.write(json.dumps({
                "date": date.isoformat(),
                "delegations": keys,
            }) + "\n")
    return str(path)


def read_daily_delegations(
    path: Union[str, pathlib.Path]
) -> DailyDelegations:
    """Read a JSONL file written by :func:`write_daily_delegations`."""
    daily = DailyDelegations()
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                date = datetime.date.fromisoformat(str(payload["date"]))
                keys = [
                    key_from_json(raw)
                    for raw in payload["delegations"]
                ]
            except (KeyError, ValueError, TypeError) as exc:
                raise DatasetError(
                    f"bad delegations line {line_number}: {exc}"
                ) from exc
            daily.record(date, keys)
    return daily
