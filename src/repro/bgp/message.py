"""Route records as collectors export them.

Three record shapes flow through the system:

- :class:`Announcement` — *origin-side intent*: an AS announces a
  prefix on a given day, optionally with restricted propagation (used
  by the world simulator to model localized hijacks/misconfigurations).
- :class:`RouteRecord` — *collector-side observation*: one (monitor,
  prefix, AS path) element, the unit a BGPStream-like reader yields.
- :class:`Withdrawal` — a monitor losing a route (update streams).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

from repro.errors import BgpError
from repro.netbase.aspath import ASPath
from repro.netbase.prefix import IPv4Prefix


@dataclass(frozen=True)
class Announcement:
    """An origination: ``origin_asn`` announces ``prefix``.

    ``restricted_to_monitors`` — when not None, propagation is forced
    to reach only that monitor subset regardless of topology (models
    localized events such as more-specific hijacks that stay regional
    or leaks via a single peer).
    """

    prefix: IPv4Prefix
    origin_asn: int
    restricted_to_monitors: Optional[FrozenSet[int]] = None
    as_set_origin: bool = False

    def __post_init__(self) -> None:
        if self.origin_asn < 0:
            raise BgpError("invalid origin AS")


@dataclass(frozen=True)
class RouteRecord:
    """One routing-table element observed at a collector.

    ``as_path`` is monitor-first/origin-last; ``origin`` convenience
    accessors delegate to the path.
    """

    collector: str
    monitor_asn: int
    prefix: IPv4Prefix
    as_path: ASPath
    date: datetime.date

    def origin_asn(self) -> int:
        """The (unique) origin AS; raises for AS_SET origins."""
        return self.as_path.origin().sole_origin()

    def to_json(self) -> Dict[str, object]:
        """Serialize for archive files (one JSON object per line)."""
        return {
            "collector": self.collector,
            "monitor": self.monitor_asn,
            "prefix": str(self.prefix),
            "as_path": str(self.as_path),
            "date": self.date.isoformat(),
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "RouteRecord":
        return cls(
            collector=str(data["collector"]),
            monitor_asn=int(data["monitor"]),  # type: ignore[arg-type]
            prefix=IPv4Prefix.parse(str(data["prefix"])),
            as_path=ASPath.parse(str(data["as_path"])),
            date=datetime.date.fromisoformat(str(data["date"])),
        )


@dataclass(frozen=True)
class Withdrawal:
    """A monitor losing its route for a prefix."""

    collector: str
    monitor_asn: int
    prefix: IPv4Prefix
    date: datetime.date
