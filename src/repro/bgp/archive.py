"""RIB + update-file archives, the way collectors actually publish.

The paper's data handling (§4): "we use the RIB snapshot at 0:00 UTC+0
and all update files for that day.  If an update file is missing, we
additionally download the first available rib snapshot afterward."

This module reproduces that structure: a window starts with a full RIB
snapshot per collector, followed by per-day update files (announce /
withdraw deltas against the previous day).  The reader replays updates
onto the RIB; when a day's update file is missing it falls back to the
first available later RIB snapshot, exactly like the paper.
"""

from __future__ import annotations

import datetime
import json
import pathlib
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.bgp.collector import CollectorSystem
from repro.bgp.message import RouteRecord
from repro.bgp.rib import RoutingTable
from repro.bgp.stream import AnnouncementSource, date_range
from repro.errors import CollectorDataError
from repro.netbase.aspath import ASPath
from repro.netbase.prefix import IPv4Prefix
from repro.obs.metrics import NULL, MetricsRegistry

_RIB_SUFFIX = ".rib.jsonl"
_UPDATES_SUFFIX = ".updates.jsonl"


def _rib_path(base: pathlib.Path, collector: str,
              date: datetime.date) -> pathlib.Path:
    return base / collector / f"{date.isoformat()}{_RIB_SUFFIX}"


def _updates_path(base: pathlib.Path, collector: str,
                  date: datetime.date) -> pathlib.Path:
    return base / collector / f"{date.isoformat()}{_UPDATES_SUFFIX}"


def write_window(
    system: CollectorSystem,
    source: AnnouncementSource,
    start: datetime.date,
    end: datetime.date,
    archive_dir: Union[str, pathlib.Path],
    *,
    rib_every_days: int = 7,
) -> List[str]:
    """Write a window as RIB snapshots plus daily update files.

    A full RIB is dumped on the first day and every ``rib_every_days``
    after (real collectors dump every 8 hours; daily deltas dominate
    either way); the days in between get update files containing only
    the announce/withdraw deltas.  Returns every path written.
    """
    base = pathlib.Path(archive_dir)
    paths: List[str] = []
    tables: Dict[Tuple[str, int], RoutingTable] = {}
    for day_index, date in enumerate(date_range(start, end)):
        announcements = list(source(date))
        # Desired per-monitor state for the day.
        desired: Dict[Tuple[str, int], Dict[IPv4Prefix, ASPath]] = {}
        for record in system.records_for_day(announcements, date):
            key = (record.collector, record.monitor_asn)
            desired.setdefault(key, {})[record.prefix] = record.as_path
        is_rib_day = day_index % rib_every_days == 0
        per_collector_updates: Dict[str, List[dict]] = {}
        for collector in system.collectors():
            directory = base / collector.name
            directory.mkdir(parents=True, exist_ok=True)
            per_collector_updates[collector.name] = []
        for collector in system.collectors():
            for monitor in sorted(collector.monitors):
                key = (collector.name, monitor)
                table = tables.get(key)
                if table is None:
                    table = RoutingTable(collector.name, monitor)
                    tables[key] = table
                announcements_out, withdrawals = table.reconcile(
                    desired.get(key, {}), date
                )
                for record in announcements_out:
                    per_collector_updates[collector.name].append(
                        {"type": "A", **record.to_json()}
                    )
                for withdrawal in withdrawals:
                    per_collector_updates[collector.name].append({
                        "type": "W",
                        "collector": withdrawal.collector,
                        "monitor": withdrawal.monitor_asn,
                        "prefix": str(withdrawal.prefix),
                        "date": withdrawal.date.isoformat(),
                    })
        for collector in system.collectors():
            if is_rib_day:
                path = _rib_path(base, collector.name, date)
                with open(path, "w", encoding="utf-8") as handle:
                    for monitor in sorted(collector.monitors):
                        table = tables[(collector.name, monitor)]
                        for record in table.records(date):
                            handle.write(
                                json.dumps(record.to_json()) + "\n"
                            )
                paths.append(str(path))
            else:
                path = _updates_path(base, collector.name, date)
                with open(path, "w", encoding="utf-8") as handle:
                    for update in per_collector_updates[collector.name]:
                        handle.write(json.dumps(update) + "\n")
                paths.append(str(path))
    return paths


class ArchiveWindowReader:
    """Replays a RIB+updates archive back into per-day route records.

    Implements the paper's missing-file fallback: a day whose update
    file is absent (and which is not a RIB day) is reconstructed from
    the *first available RIB snapshot afterward* within
    ``max_lookahead_days``.
    """

    def __init__(
        self,
        archive_dir: Union[str, pathlib.Path],
        *,
        max_lookahead_days: int = 14,
        metrics: MetricsRegistry = NULL,
    ):
        self._base = pathlib.Path(archive_dir)
        if not self._base.is_dir():
            raise CollectorDataError(f"no archive at {self._base}")
        self._max_lookahead = max_lookahead_days
        self._metrics = metrics
        self.fallbacks_used = 0

    def set_metrics(self, metrics: MetricsRegistry) -> None:
        """Route replay accounting into ``metrics`` (no-op default)."""
        self._metrics = metrics

    def collectors(self) -> List[str]:
        return sorted(
            d.name for d in self._base.iterdir() if d.is_dir()
        )

    # -- low-level file access ------------------------------------------

    def _read_rib(
        self, collector: str, date: datetime.date
    ) -> Optional[List[RouteRecord]]:
        path = _rib_path(self._base, collector, date)
        if not path.exists():
            return None
        records = []
        # One span per RIB file: snapshot parsing dominates archive
        # replay, so traces show exactly which file a slow day spent
        # its time in (free on the no-op registry).
        with self._metrics.span("archive.read_rib"):
            with open(path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        records.append(
                            RouteRecord.from_json(json.loads(line))
                        )
        self._metrics.inc("archive.rib_records_read", len(records))
        self._metrics.inc("archive.rib_files_read")
        return records

    def _read_updates(
        self, collector: str, date: datetime.date
    ) -> Optional[List[dict]]:
        path = _updates_path(self._base, collector, date)
        if not path.exists():
            return None
        updates = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    updates.append(json.loads(line))
        return updates

    def _next_rib(
        self, collector: str, date: datetime.date
    ) -> Optional[Tuple[datetime.date, List[RouteRecord]]]:
        for offset in range(1, self._max_lookahead + 1):
            candidate = date + datetime.timedelta(days=offset)
            records = self._read_rib(collector, candidate)
            if records is not None:
                return candidate, records
        return None

    # -- replay ---------------------------------------------------------------

    def records_on(self, date: datetime.date) -> Iterator[RouteRecord]:
        """Reconstruct every collector's records for ``date``."""
        for collector in self.collectors():
            yield from self._collector_records_on(collector, date)

    def _collector_records_on(
        self, collector: str, date: datetime.date
    ) -> Iterator[RouteRecord]:
        rib = self._read_rib(collector, date)
        if rib is not None:
            for record in rib:
                yield RouteRecord(
                    collector=record.collector,
                    monitor_asn=record.monitor_asn,
                    prefix=record.prefix,
                    as_path=record.as_path,
                    date=date,
                )
            return
        # Replay from the most recent RIB before `date`.
        rib_date = None
        for offset in range(1, self._max_lookahead + 1):
            candidate = date - datetime.timedelta(days=offset)
            rib = self._read_rib(collector, candidate)
            if rib is not None:
                rib_date = candidate
                break
        if rib is None or rib_date is None:
            raise CollectorDataError(
                f"no RIB within {self._max_lookahead} days before "
                f"{date} for {collector}"
            )
        tables: Dict[int, RoutingTable] = {}
        for record in rib:
            table = tables.setdefault(
                record.monitor_asn,
                RoutingTable(collector, record.monitor_asn),
            )
            table.announce(record.prefix, record.as_path)
        current = rib_date + datetime.timedelta(days=1)
        while current <= date:
            updates = self._read_updates(collector, current)
            if updates is None:
                # The paper's fallback: jump to the next available RIB.
                self.fallbacks_used += 1
                self._metrics.inc("archive.fallback_rib_events")
                replacement = self._next_rib(collector, current - datetime.timedelta(days=1))
                if replacement is None:
                    raise CollectorDataError(
                        f"update file missing on {current} for "
                        f"{collector} and no later RIB to fall back to"
                    )
                _rib_day, records = replacement
                for record in records:
                    yield RouteRecord(
                        collector=record.collector,
                        monitor_asn=record.monitor_asn,
                        prefix=record.prefix,
                        as_path=record.as_path,
                        date=date,
                    )
                return
            announce_count = withdraw_count = 0
            for update in updates:
                monitor = int(update["monitor"])
                table = tables.setdefault(
                    monitor, RoutingTable(collector, monitor)
                )
                prefix = IPv4Prefix.parse(str(update["prefix"]))
                if update["type"] == "A":
                    table.announce(
                        prefix, ASPath.parse(str(update["as_path"]))
                    )
                    announce_count += 1
                elif update["type"] == "W":
                    table.withdraw(prefix)
                    withdraw_count += 1
                else:
                    raise CollectorDataError(
                        f"unknown update type {update['type']!r}"
                    )
            self._metrics.inc(
                "archive.announcements_applied", announce_count
            )
            self._metrics.inc(
                "archive.withdrawals_applied", withdraw_count
            )
            current += datetime.timedelta(days=1)
        for table in tables.values():
            yield from table.records(date)
