"""A pybgpstream-like reader interface.

The delegation pipeline consumes daily routing data through one narrow
interface — :class:`RouteStream` — which can be backed either by an
in-memory day generator (fast path used by benchmarks) or by on-disk
collector archives (exercised by tests and examples).  This mirrors how
code written against pybgpstream does not care which collector archive
the elements came from.
"""

from __future__ import annotations

import datetime
import pathlib
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.bgp.collector import CollectorSystem
from repro.bgp.message import Announcement, RouteRecord
from repro.errors import CollectorDataError
from repro.netbase.asnum import OriginSet
from repro.netbase.prefix import IPv4Prefix
from repro.obs.metrics import NULL, MetricsRegistry

#: A function returning the day's announcements (the world's behaviour).
AnnouncementSource = Callable[[datetime.date], Iterable[Announcement]]


def date_range(
    start: datetime.date,
    end: datetime.date,
    step_days: int = 1,
) -> Iterator[datetime.date]:
    """Yield dates from ``start`` (inclusive) to ``end`` (exclusive)."""
    if step_days <= 0:
        raise ValueError("step_days must be positive")
    current = start
    while current < end:
        yield current
        current += datetime.timedelta(days=step_days)


class RouteStream:
    """Iterate route records day by day, like a BGPStream session."""

    def __init__(
        self,
        system: CollectorSystem,
        source: Optional[AnnouncementSource] = None,
        archive_dir: Optional[Union[str, pathlib.Path]] = None,
    ):
        if (source is None) == (archive_dir is None):
            raise CollectorDataError(
                "provide exactly one of source / archive_dir"
            )
        self._system = system
        self._source = source
        self._archive_dir = archive_dir
        self._monitor_count: Optional[int] = None
        self._metrics: MetricsRegistry = NULL

    @property
    def system(self) -> CollectorSystem:
        return self._system

    def set_metrics(self, metrics: MetricsRegistry) -> None:
        """Route record/pair accounting into ``metrics``.

        Off by default (the shared no-op registry): the per-record
        counting path is only entered when a real registry is
        attached, so uninstrumented streams read at full speed.
        """
        self._metrics = metrics

    def monitor_count(self) -> int:
        """Total number of monitors feeding the stream.

        Cached: the monitor population is fixed for a stream's
        lifetime, and per-day pipelines ask for it on every day.
        """
        if self._monitor_count is None:
            self._monitor_count = len(self._system.all_monitors())
        return self._monitor_count

    def records_on(self, date: datetime.date) -> Iterator[RouteRecord]:
        """All route records of one day."""
        if self._source is not None:
            records = self._system.records_for_day(
                self._source(date), date
            )
        else:
            assert self._archive_dir is not None
            records = CollectorSystem.read_day(self._archive_dir, date)
        if not self._metrics.enabled:
            yield from records
            return
        count = 0
        for record in records:
            count += 1
            yield record
        self._metrics.inc("stream.records_read", count)
        self._metrics.inc("stream.days_read")

    def days(
        self,
        start: datetime.date,
        end: datetime.date,
        step_days: int = 1,
    ) -> Iterator[Tuple[datetime.date, List[RouteRecord]]]:
        """Yield ``(date, records)`` pairs across a time window."""
        for date in date_range(start, end, step_days):
            yield date, list(self.records_on(date))

    def pairs_on(
        self, date: datetime.date
    ) -> Dict[IPv4Prefix, Tuple[OriginSet, int]]:
        """Prefix-origin visibility aggregates for one day.

        Source-backed streams take the collector fast path (no
        per-monitor record materialization); archive-backed streams
        aggregate the stored records.
        """
        if not self._metrics.enabled:
            if self._source is not None:
                return self._system.pair_counts_for_day(
                    self._source(date)
                )
            return prefix_origin_pairs(self.records_on(date))
        # Instrumented path: the aggregation appears as its own span,
        # so traces show how much of each day went to reading routes
        # versus running the inference filters.
        with self._metrics.span("stream.pairs_on"):
            if self._source is not None:
                pairs = self._system.pair_counts_for_day(
                    self._source(date)
                )
            else:
                pairs = prefix_origin_pairs(self.records_on(date))
        self._metrics.inc("stream.pairs_aggregated", len(pairs))
        return pairs

    def pair_table_on(self, date: datetime.date):
        """One day's pairs as a columnar :class:`~repro.bgp.rib.
        PairTable` — the input of the ``columnar`` inference kernel.

        Source-backed streams aggregate announcements straight into
        packed arrays (:meth:`CollectorSystem.pair_table_for_day`);
        archive-backed streams convert the record-level aggregation.
        Spans/counters use the same names as :meth:`pairs_on`, so
        traces line up across kernels.
        """
        from repro.bgp.rib import PairTable

        if not self._metrics.enabled:
            if self._source is not None:
                return self._system.pair_table_for_day(self._source(date))
            return PairTable.from_pairs(
                prefix_origin_pairs(self.records_on(date))
            )
        with self._metrics.span("stream.pairs_on"):
            if self._source is not None:
                table = self._system.pair_table_for_day(self._source(date))
            else:
                table = PairTable.from_pairs(
                    prefix_origin_pairs(self.records_on(date))
                )
        self._metrics.inc("stream.pairs_aggregated", len(table))
        return table

    def pairs_for_days(
        self, dates: Iterable[datetime.date]
    ) -> Iterator[
        Tuple[datetime.date, Dict[IPv4Prefix, Tuple[OriginSet, int]]]
    ]:
        """Yield ``(date, pairs)`` for a batch of days.

        The unit of work a :mod:`repro.delegation.runner` worker
        executes for its shard: one stream (and its lazily built
        backing world or archive readers) is reused across the whole
        batch instead of being re-opened per day.
        """
        for date in dates:
            yield date, self.pairs_on(date)


def prefix_origin_pairs(
    records: Iterable[RouteRecord],
) -> Dict[IPv4Prefix, Tuple[OriginSet, int]]:
    """Aggregate records into per-prefix origin sets and visibility.

    Returns ``prefix -> (merged OriginSet, distinct monitor count)``.
    The merged origin set becomes non-unique when monitors disagree on
    the origin (MOAS) or any observation carried an AS_SET — exactly
    the two conditions inference step (iii) removes.
    """
    origins: Dict[IPv4Prefix, OriginSet] = {}
    monitors: Dict[IPv4Prefix, set] = {}
    for record in records:
        origin = record.as_path.origin()
        existing = origins.get(record.prefix)
        origins[record.prefix] = (
            origin if existing is None else existing.merge(origin)
        )
        monitors.setdefault(record.prefix, set()).add(
            (record.collector, record.monitor_asn)
        )
    return {
        prefix: (origins[prefix], len({m for _c, m in monitors[prefix]}))
        for prefix in origins
    }
