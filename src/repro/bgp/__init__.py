"""BGP routing substrate.

Stands in for the paper's three collector projects (RIPE RIS, Route
Views, Isolario):

- :mod:`~repro.bgp.topology` — AS-level topology with Gao–Rexford
  customer/provider/peer relationships,
- :mod:`~repro.bgp.propagation` — valley-free route propagation
  (who receives a route, and over which AS path),
- :mod:`~repro.bgp.message` — route records as collectors export them,
- :mod:`~repro.bgp.rib` — per-monitor routing tables and the columnar
  :class:`~repro.bgp.rib.PairTable` day representation,
- :mod:`~repro.bgp.collector` — collector projects producing daily
  RIB/update archives,
- :mod:`~repro.bgp.stream` — a pybgpstream-like reader over archives,
- :mod:`~repro.bgp.sanitize` — the paper's route-cleaning rules.
"""

from repro.bgp.archive import ArchiveWindowReader, write_window
from repro.bgp.collector import Collector, CollectorSystem
from repro.bgp.message import Announcement, RouteRecord, Withdrawal
from repro.bgp.propagation import PropagationModel
from repro.bgp.rib import PairTable, RoutingTable
from repro.bgp.sanitize import SanitizeStats, sanitize_records
from repro.bgp.stream import RouteStream
from repro.bgp.topology import ASRelationship, ASTopology, TopologyConfig

__all__ = [
    "ASRelationship",
    "ASTopology",
    "Announcement",
    "ArchiveWindowReader",
    "write_window",
    "Collector",
    "CollectorSystem",
    "PairTable",
    "PropagationModel",
    "RouteRecord",
    "RouteStream",
    "RoutingTable",
    "SanitizeStats",
    "TopologyConfig",
    "Withdrawal",
    "sanitize_records",
]
