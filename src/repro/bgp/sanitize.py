"""The paper's route-sanitization rules (§4, "BGP-delegations").

"To sanitize our data, we remove all routes for private and reserved
address space, routes that contain ASes currently reserved by IANA, and
routes that contain a loop in their AS-PATH."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Tuple

from repro.bgp.message import RouteRecord
from repro.netbase.bogons import is_bogon


@dataclass
class SanitizeStats:
    """Counters for what sanitization removed."""

    kept: int = 0
    bogon_prefix: int = 0
    reserved_asn: int = 0
    as_path_loop: int = 0

    @property
    def removed(self) -> int:
        return self.bogon_prefix + self.reserved_asn + self.as_path_loop

    @property
    def total(self) -> int:
        return self.kept + self.removed

    def as_dict(self) -> dict:
        return {
            "kept": self.kept,
            "bogon_prefix": self.bogon_prefix,
            "reserved_asn": self.reserved_asn,
            "as_path_loop": self.as_path_loop,
        }


def is_clean(record: RouteRecord) -> bool:
    """True if the record survives all three cleaning rules."""
    if is_bogon(record.prefix):
        return False
    if record.as_path.has_reserved_asn():
        return False
    if record.as_path.has_loop():
        return False
    return True


def sanitize_records(
    records: Iterable[RouteRecord],
    stats: "SanitizeStats | None" = None,
) -> Iterator[RouteRecord]:
    """Yield only clean records, attributing removals to their rule.

    Rules are checked in the paper's order, so a record failing several
    is counted against the first.
    """
    for record in records:
        if is_bogon(record.prefix):
            if stats is not None:
                stats.bogon_prefix += 1
            continue
        if record.as_path.has_reserved_asn():
            if stats is not None:
                stats.reserved_asn += 1
            continue
        if record.as_path.has_loop():
            if stats is not None:
                stats.as_path_loop += 1
            continue
        if stats is not None:
            stats.kept += 1
        yield record
