"""Valley-free route propagation.

Implements the Gao–Rexford export model: a route learned from a
customer is exported to everyone; a route learned from a peer or a
provider is exported to customers only.  Consequently, a route from
origin *o* reaches AS *m* iff there is a path that goes uphill
(customer→provider) zero or more steps, across at most one peering
edge, then downhill (provider→customer) zero or more steps.

The model exposes the two primitives everything downstream needs:

- :meth:`PropagationModel.receivers` — the set of ASes that receive a
  route originated by *o* (cached per origin), and
- :meth:`PropagationModel.path` — one shortest valley-free AS path from
  a receiver back to the origin (what the monitor's RIB would show).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.bgp.topology import ASTopology
from repro.errors import BgpError
from repro.netbase.aspath import ASPath

#: Propagation phases: uphill, crossed-one-peering, downhill.
_UP, _PEERED, _DOWN = 0, 1, 2

_State = Tuple[int, int]
_Explored = Tuple[
    FrozenSet[int],            # receivers
    Dict[int, _State],         # asn -> first (shortest) state reached
    Dict[_State, _State],      # state -> parent state
]


class PropagationModel:
    """Valley-free reachability and path selection over a topology."""

    def __init__(self, topology: ASTopology):
        self._topology = topology
        self._cache: Dict[int, _Explored] = {}

    @property
    def topology(self) -> ASTopology:
        return self._topology

    # -- core BFS ---------------------------------------------------------

    def _explore(self, origin: int) -> _Explored:
        """BFS over (AS, phase) states from ``origin``.

        BFS order guarantees the first state recorded for an AS lies on
        a shortest valley-free path; parent pointers are kept per
        *state* so reconstruction never mixes phases.
        """
        cached = self._cache.get(origin)
        if cached is not None:
            return cached
        topology = self._topology
        if origin not in topology:
            raise BgpError(f"unknown origin AS{origin}")

        parent: Dict[_State, _State] = {}
        best_state: Dict[int, _State] = {}
        start: _State = (origin, _UP)
        parent[start] = (-1, -1)
        best_state[origin] = start
        queue = deque([start])
        while queue:
            state = queue.popleft()
            asn, phase = state
            neighbors: List[_State] = []
            if phase == _UP:
                neighbors.extend(
                    (provider, _UP)
                    for provider in sorted(topology.providers_of(asn))
                )
                neighbors.extend(
                    (peer, _PEERED)
                    for peer in sorted(topology.peers_of(asn))
                )
            neighbors.extend(
                (customer, _DOWN)
                for customer in sorted(topology.customers_of(asn))
            )
            for neighbor in neighbors:
                if neighbor in parent:
                    continue
                parent[neighbor] = state
                best_state.setdefault(neighbor[0], neighbor)
                queue.append(neighbor)

        receivers = frozenset(best_state) - {origin}
        result = (receivers, best_state, parent)
        self._cache[origin] = result
        return result

    # -- public API -----------------------------------------------------------

    def receivers(self, origin: int) -> FrozenSet[int]:
        """All ASes that receive a route originated by ``origin``."""
        receivers, _best, _parent = self._explore(origin)
        return receivers

    def sees(self, monitor: int, origin: int) -> bool:
        """True if ``monitor`` receives routes originated by ``origin``."""
        return monitor in self.receivers(origin)

    def path(self, origin: int, monitor: int) -> Optional[ASPath]:
        """One shortest valley-free AS path as seen at ``monitor``.

        The path is monitor-first, origin-last (collector convention).
        Returns ``None`` when the monitor does not receive the route.
        """
        receivers, best_state, parent = self._explore(origin)
        if monitor not in receivers:
            return None
        hops: List[int] = []
        state = best_state[monitor]
        while state != (-1, -1):
            hops.append(state[0])
            state = parent[state]
        return ASPath.from_asns(hops)

    def visibility_fraction(
        self, origin: int, monitors: FrozenSet[int]
    ) -> float:
        """Fraction of ``monitors`` that receive routes from ``origin``."""
        if not monitors:
            return 0.0
        seen = self.receivers(origin)
        return len(frozenset(monitors) & seen) / len(monitors)

    def clear_cache(self) -> None:
        """Drop memoized per-origin results (topology changed)."""
        self._cache.clear()
