"""Per-monitor routing tables (RIBs) and the columnar day table.

A :class:`RoutingTable` tracks what one monitor currently routes.  The
collector system uses RIBs to derive update streams (announce on
appearance/path change, withdraw on disappearance) between consecutive
daily snapshots — the same RIB+updates structure the paper consumes
from RIPE RIS / Route Views / Isolario.

A :class:`PairTable` is the *columnar* representation of one day's
aggregated (prefix, origin) pairs: parallel packed arrays instead of a
dict of per-record objects.  It carries exactly the facts the
delegation-inference filters consume — packed prefix key, sole origin,
origin-uniqueness, monitor count — so a whole day can be filtered with
tight loops over flat integer columns (the ``columnar`` kernel in
:mod:`repro.delegation.inference`).
"""

from __future__ import annotations

import datetime
from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.bgp.message import RouteRecord, Withdrawal
from repro.netbase.aspath import ASPath
from repro.netbase.lpm import pack, unpack
from repro.netbase.prefix import IPv4Prefix
from repro.netbase.trie import PrefixTrie

#: Flag bit: the pair's origin is a plain single AS (not AS_SET/MOAS).
UNIQUE_ORIGIN = 0x01


class PairTable:
    """One day of (prefix, origin) pairs as parallel packed arrays.

    Columns, all the same length, sorted by packed prefix key:

    - ``keys`` — ``array('Q')`` of ``(network << 6) | length``
      (:func:`repro.netbase.lpm.pack` order, so covering prefixes sort
      immediately before the prefixes they cover),
    - ``origins`` — ``array('Q')`` of the sole origin AS (meaningful
      only when the ``UNIQUE_ORIGIN`` flag is set; 0 otherwise),
    - ``flags`` — ``array('B')``; bit 0 = unique origin,
    - ``monitor_counts`` — ``array('I')`` of distinct monitors that
      saw the pair (the visibility-filter numerator).

    Pairs whose origin is an AS_SET or MOAS carry no member detail —
    inference step (iii) drops them unconditionally, so only the
    uniqueness verdict survives aggregation.
    """

    __slots__ = ("keys", "origins", "flags", "monitor_counts")

    def __init__(
        self,
        keys: "array",
        origins: "array",
        flags: "array",
        monitor_counts: "array",
    ) -> None:
        if not (
            len(keys) == len(origins) == len(flags) == len(monitor_counts)
        ):
            raise ValueError("PairTable columns must have equal length")
        self.keys = keys
        self.origins = origins
        self.flags = flags
        self.monitor_counts = monitor_counts

    @classmethod
    def from_aggregate(
        cls, aggregate: Dict[int, Tuple[int, bool, int]]
    ) -> "PairTable":
        """Build from ``packed_key -> (origin, unique, monitors)``.

        ``origin`` is ignored (stored as 0) when ``unique`` is False.
        """
        keys = array("Q", sorted(aggregate))
        origins = array("Q", bytes(8 * len(keys)))
        flags = array("B", bytes(len(keys)))
        monitor_counts = array("I", bytes(4 * len(keys)))
        for index, key in enumerate(keys):
            origin, unique, monitors = aggregate[key]
            if unique:
                origins[index] = origin
                flags[index] = UNIQUE_ORIGIN
            monitor_counts[index] = monitors
        return cls(keys, origins, flags, monitor_counts)

    @classmethod
    def from_pairs(cls, pairs: Dict[IPv4Prefix, tuple]) -> "PairTable":
        """Columnar view of a ``prefix -> (OriginSet, count)`` dict.

        The interop path: archive-backed streams and hand-built pair
        dicts enter the columnar kernel through here.
        """
        aggregate: Dict[int, Tuple[int, bool, int]] = {}
        for prefix, (origin_set, monitors) in pairs.items():
            unique = origin_set.is_unique
            aggregate[pack(prefix.network, prefix.length)] = (
                origin_set.sole_origin() if unique else 0,
                unique,
                monitors,
            )
        return cls.from_aggregate(aggregate)

    def column_at(self, index: int) -> Tuple[int, int, int, int]:
        """One entry as ``(key, origin, flags, monitors)`` — the unit
        day-over-day deltas (:mod:`repro.delegation.delta`) move."""
        return (
            self.keys[index],
            self.origins[index],
            self.flags[index],
            self.monitor_counts[index],
        )

    def equals(self, other: "PairTable") -> bool:
        """Exact column equality (same pairs, same observed facts)."""
        return (
            self.keys == other.keys
            and self.origins == other.origins
            and self.flags == other.flags
            and self.monitor_counts == other.monitor_counts
        )

    def rows(self) -> Iterator[Tuple[IPv4Prefix, Optional[int], int]]:
        """Yield ``(prefix, sole_origin_or_None, monitor_count)``."""
        for index, key in enumerate(self.keys):
            network, length = unpack(key)
            unique = bool(self.flags[index] & UNIQUE_ORIGIN)
            yield (
                IPv4Prefix(network, length),
                self.origins[index] if unique else None,
                self.monitor_counts[index],
            )

    def __len__(self) -> int:
        return len(self.keys)

    def __bool__(self) -> bool:
        return bool(self.keys)

    def __repr__(self) -> str:
        return f"<PairTable with {len(self.keys)} pairs>"


class RoutingTable:
    """The routing table of a single monitor at one collector."""

    def __init__(self, collector: str, monitor_asn: int):
        self._collector = collector
        self._monitor = monitor_asn
        self._routes: PrefixTrie[ASPath] = PrefixTrie()

    @property
    def collector(self) -> str:
        return self._collector

    @property
    def monitor_asn(self) -> int:
        return self._monitor

    # -- mutation ------------------------------------------------------

    def announce(self, prefix: IPv4Prefix, as_path: ASPath) -> bool:
        """Install/replace a route; True if the table changed."""
        existing = self._routes.get(prefix)
        if existing == as_path:
            return False
        self._routes.insert(prefix, as_path)
        return True

    def withdraw(self, prefix: IPv4Prefix) -> bool:
        """Remove the route for ``prefix``; True if one existed."""
        return self._routes.delete(prefix)

    # -- queries ----------------------------------------------------------

    def route_for(self, prefix: IPv4Prefix) -> Optional[ASPath]:
        """Exact-match route lookup."""
        return self._routes.get(prefix)

    def best_match(
        self, prefix: IPv4Prefix
    ) -> Optional[Tuple[IPv4Prefix, ASPath]]:
        """Longest-prefix-match lookup (forwarding behaviour)."""
        return self._routes.longest_match(prefix)

    def prefixes(self) -> Iterator[IPv4Prefix]:
        return self._routes.keys()

    def records(self, date: datetime.date) -> Iterator[RouteRecord]:
        """Dump the table as :class:`RouteRecord` elements."""
        for prefix, as_path in self._routes.items():
            yield RouteRecord(
                collector=self._collector,
                monitor_asn=self._monitor,
                prefix=prefix,
                as_path=as_path,
                date=date,
            )

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        return prefix in self._routes

    # -- reconciliation ----------------------------------------------------

    def reconcile(
        self,
        desired: Dict[IPv4Prefix, ASPath],
        date: datetime.date,
    ) -> Tuple[List[RouteRecord], List[Withdrawal]]:
        """Move the table to ``desired``; return the implied updates.

        Produces the announce/withdraw messages a collector's update
        file would contain between two daily snapshots.
        """
        announcements: List[RouteRecord] = []
        withdrawals: List[Withdrawal] = []
        current = dict(self._routes.items())
        for prefix, as_path in desired.items():
            if current.get(prefix) != as_path:
                self.announce(prefix, as_path)
                announcements.append(
                    RouteRecord(
                        collector=self._collector,
                        monitor_asn=self._monitor,
                        prefix=prefix,
                        as_path=as_path,
                        date=date,
                    )
                )
        for prefix in current:
            if prefix not in desired:
                self.withdraw(prefix)
                withdrawals.append(
                    Withdrawal(
                        collector=self._collector,
                        monitor_asn=self._monitor,
                        prefix=prefix,
                        date=date,
                    )
                )
        return announcements, withdrawals
