"""Per-monitor routing tables (RIBs) and the columnar day table.

A :class:`RoutingTable` tracks what one monitor currently routes.  The
collector system uses RIBs to derive update streams (announce on
appearance/path change, withdraw on disappearance) between consecutive
daily snapshots — the same RIB+updates structure the paper consumes
from RIPE RIS / Route Views / Isolario.

A :class:`PairTable` is the *columnar* representation of one day's
aggregated (prefix, origin) pairs: parallel packed arrays instead of a
dict of per-record objects.  It carries exactly the facts the
delegation-inference filters consume — packed prefix key, sole origin,
origin-uniqueness, monitor count — so a whole day can be filtered with
tight loops over flat integer columns (the ``columnar`` kernel in
:mod:`repro.delegation.inference`).
"""

from __future__ import annotations

import datetime
import sys
from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.bgp.message import RouteRecord, Withdrawal
from repro.netbase.aspath import ASPath
from repro.netbase.lpm import pack, unpack
from repro.netbase.prefix import IPv4Prefix
from repro.netbase.trie import PrefixTrie

#: Flag bit: the pair's origin is a plain single AS (not AS_SET/MOAS).
UNIQUE_ORIGIN = 0x01

#: Bytes per pair in the packed column layout: key u64 + origin u64 +
#: monitor count u32 + flags u8.  ``PairTable.to_bytes`` emits the four
#: columns back-to-back in that order (widest first, so every column
#: starts aligned whenever the buffer itself is 8-byte aligned), all
#: little-endian — the exact on-disk layout of a shard file's body.
ROW_BYTES = 8 + 8 + 4 + 1


class PairTable:
    """One day of (prefix, origin) pairs as parallel packed arrays.

    Columns, all the same length, sorted by packed prefix key:

    - ``keys`` — ``array('Q')`` of ``(network << 6) | length``
      (:func:`repro.netbase.lpm.pack` order, so covering prefixes sort
      immediately before the prefixes they cover),
    - ``origins`` — ``array('Q')`` of the sole origin AS (meaningful
      only when the ``UNIQUE_ORIGIN`` flag is set; 0 otherwise),
    - ``flags`` — ``array('B')``; bit 0 = unique origin,
    - ``monitor_counts`` — ``array('I')`` of distinct monitors that
      saw the pair (the visibility-filter numerator).

    Pairs whose origin is an AS_SET or MOAS carry no member detail —
    inference step (iii) drops them unconditionally, so only the
    uniqueness verdict survives aggregation.

    Columns are normally ``array`` objects, but every consumer only
    indexes, iterates, slices and bisects them — so a table can also be
    backed by cast :class:`memoryview` columns over a shard file's
    mapped bytes (:meth:`from_buffer`), making a load zero-copy.  Such
    views are read-only and not picklable; :meth:`materialize` copies
    them back into real arrays when a table must cross a process
    boundary.
    """

    __slots__ = ("keys", "origins", "flags", "monitor_counts")

    #: Process-wide count of buffer-backed tables copied out into real
    #: arrays by :meth:`materialize`.  Every copy-out costs one full
    #: table of heap (and, on a fan-in path, one pickled table crossing
    #: a process boundary), so the runner surfaces this in manifests as
    #: the ``pairtable.materialized`` counter — a regression from the
    #: zero-copy fan-in back to pickled hand-backs shows up in
    #: ``repro history diff`` instead of only in the memory profile.
    materialize_count = 0

    def __init__(
        self,
        keys: "array",
        origins: "array",
        flags: "array",
        monitor_counts: "array",
    ) -> None:
        if not (
            len(keys) == len(origins) == len(flags) == len(monitor_counts)
        ):
            raise ValueError("PairTable columns must have equal length")
        self.keys = keys
        self.origins = origins
        self.flags = flags
        self.monitor_counts = monitor_counts

    @classmethod
    def from_aggregate(
        cls, aggregate: Dict[int, Tuple[int, bool, int]]
    ) -> "PairTable":
        """Build from ``packed_key -> (origin, unique, monitors)``.

        ``origin`` is ignored (stored as 0) when ``unique`` is False.
        """
        keys = array("Q", sorted(aggregate))
        origins = array("Q", bytes(8 * len(keys)))
        flags = array("B", bytes(len(keys)))
        monitor_counts = array("I", bytes(4 * len(keys)))
        for index, key in enumerate(keys):
            origin, unique, monitors = aggregate[key]
            if unique:
                origins[index] = origin
                flags[index] = UNIQUE_ORIGIN
            monitor_counts[index] = monitors
        return cls(keys, origins, flags, monitor_counts)

    @classmethod
    def from_pairs(cls, pairs: Dict[IPv4Prefix, tuple]) -> "PairTable":
        """Columnar view of a ``prefix -> (OriginSet, count)`` dict.

        The interop path: archive-backed streams and hand-built pair
        dicts enter the columnar kernel through here.
        """
        aggregate: Dict[int, Tuple[int, bool, int]] = {}
        for prefix, (origin_set, monitors) in pairs.items():
            unique = origin_set.is_unique
            aggregate[pack(prefix.network, prefix.length)] = (
                origin_set.sole_origin() if unique else 0,
                unique,
                monitors,
            )
        return cls.from_aggregate(aggregate)

    @classmethod
    def from_buffer(cls, buffer, count: int, offset: int = 0) -> "PairTable":
        """Adopt packed columns straight out of a byte buffer.

        ``buffer`` (typically a :class:`mmap.mmap` over a shard file)
        must hold the :data:`ROW_BYTES`-per-pair column layout written
        by :meth:`to_bytes` starting at ``offset``: ``count`` u64 keys,
        ``count`` u64 origins, ``count`` u32 monitor counts, ``count``
        u8 flags, all little-endian.  On little-endian hosts the
        returned table's columns are cast memoryviews into ``buffer``
        — no bytes are copied, and the views keep the buffer (and its
        mmap) alive; big-endian hosts fall back to copying into real
        arrays with a byteswap.

        The shard header is sized so ``offset`` (and with it every
        column start) lands 8-byte aligned — not something
        ``memoryview.cast`` demands, but it keeps the mapping adoptable
        by stricter readers (numpy views, C extensions) later.
        """
        end = offset + count * ROW_BYTES
        view = memoryview(buffer)[offset:end]
        if len(view) != count * ROW_BYTES:
            raise ValueError(
                f"buffer holds {len(view)} bytes from offset {offset}, "
                f"need {count * ROW_BYTES} for {count} pairs"
            )
        bounds = (0, count * 8, count * 16, count * 20, count * 21)
        if sys.byteorder == "little":
            keys = view[bounds[0]:bounds[1]].cast("Q")
            origins = view[bounds[1]:bounds[2]].cast("Q")
            monitor_counts = view[bounds[2]:bounds[3]].cast("I")
            flags = view[bounds[3]:bounds[4]].cast("B")
            return cls(keys, origins, flags, monitor_counts)
        keys = array("Q")
        keys.frombytes(view[bounds[0]:bounds[1]])
        origins = array("Q")
        origins.frombytes(view[bounds[1]:bounds[2]])
        monitor_counts = array("I")
        monitor_counts.frombytes(view[bounds[2]:bounds[3]])
        flags = array("B")
        flags.frombytes(view[bounds[3]:bounds[4]])
        for column in (keys, origins, monitor_counts):
            column.byteswap()
        return cls(keys, origins, flags, monitor_counts)

    def to_bytes(self) -> bytes:
        """The packed column layout :meth:`from_buffer` reads.

        Always little-endian on disk regardless of host order, so
        shard files are portable across architectures.
        """
        columns = (self.keys, self.origins, self.monitor_counts, self.flags)
        parts = []
        for column in columns:
            if isinstance(column, memoryview):
                # Zero-copy views only exist on little-endian hosts,
                # where the backing buffer already has disk byte order.
                parts.append(column.tobytes())
                continue
            if sys.byteorder != "little":
                column = array(column.typecode, column)
                column.byteswap()
            parts.append(column.tobytes())
        return b"".join(parts)

    @property
    def is_buffer_backed(self) -> bool:
        """True when columns are memoryviews over a mapped buffer.

        Buffer-backed tables are read-only and must never cross a
        process boundary (memoryviews don't pickle) — callers returning
        tables from pool workers go through :meth:`materialize` first.
        """
        return isinstance(self.keys, memoryview)

    def materialize(self) -> "PairTable":
        """A self-contained (picklable, mutable) copy of this table.

        A no-op returning ``self`` for tables already backed by real
        arrays.
        """
        if not self.is_buffer_backed:
            return self
        PairTable.materialize_count += 1
        return PairTable(
            array("Q", self.keys),
            array("Q", self.origins),
            array("B", self.flags),
            array("I", self.monitor_counts),
        )

    def slice(self, low: int, high: int) -> "PairTable":
        """A sub-table over rows ``[low, high)`` of this table.

        Column slicing preserves the backing kind: memoryview columns
        stay zero-copy views into the same buffer (slicing a view
        never copies), array columns copy just the requested range.
        The sorted-key invariant is inherited — any contiguous slice
        of a sorted column is sorted — so sub-tables feed the columnar
        kernel unchanged; this is what the per-/8 intra-day sharding
        hands each sub-task.
        """
        return PairTable(
            self.keys[low:high],
            self.origins[low:high],
            self.flags[low:high],
            self.monitor_counts[low:high],
        )

    @classmethod
    def concat(cls, tables: Iterable["PairTable"]) -> "PairTable":
        """Deterministic k-way columnar concatenation.

        The inverse of slicing a table at cut points: the parts'
        key ranges must be strictly ascending *across* parts (each
        part's first key greater than the previous part's last), so
        simple column concatenation — no merge network, no comparison
        per row — reproduces the sorted-array invariant exactly.  The
        precondition is validated (O(k)); violating it raises
        ``ValueError`` rather than silently producing an unsorted
        table that every bisect-based consumer would misread.

        Always returns an array-backed (picklable, mutable) table:
        the concatenation itself is the copy.
        """
        keys = array("Q")
        origins = array("Q")
        flags = array("B")
        monitor_counts = array("I")
        last_key = -1
        for table in tables:
            if not len(table):
                continue
            if table.keys[0] <= last_key:
                raise ValueError(
                    "PairTable.concat parts must have strictly "
                    "ascending, non-overlapping key ranges "
                    f"(part starting at key {table.keys[0]} follows "
                    f"key {last_key})"
                )
            last_key = table.keys[-1]
            if isinstance(table.keys, memoryview):
                # Views only exist on little-endian hosts, where the
                # backing bytes are already in array order (recast to
                # 'B': frombytes insists on a bytes-shaped buffer).
                keys.frombytes(table.keys.cast("B"))
                origins.frombytes(table.origins.cast("B"))
                flags.frombytes(table.flags.cast("B"))
                monitor_counts.frombytes(table.monitor_counts.cast("B"))
            else:
                keys.extend(table.keys)
                origins.extend(table.origins)
                flags.extend(table.flags)
                monitor_counts.extend(table.monitor_counts)
        return cls(keys, origins, flags, monitor_counts)

    def to_pairs(self) -> Dict[IPv4Prefix, tuple]:
        """Inverse of :meth:`from_pairs`, for the object kernel.

        Non-unique pairs aggregate away their member detail, so they
        come back as a placeholder non-unique :class:`~repro.netbase.
        asnum.OriginSet` — exactly the facts (uniqueness verdict, sole
        origin, monitor count) the object-path filters consume, which
        is why a store-backed object-kernel run stays byte-identical
        to one fed from live announcement records.
        """
        from repro.netbase.asnum import OriginSet

        pairs: Dict[IPv4Prefix, tuple] = {}
        for index, key in enumerate(self.keys):
            network, length = unpack(key)
            if self.flags[index] & UNIQUE_ORIGIN:
                origin_set = OriginSet((self.origins[index],))
            else:
                origin_set = OriginSet((0,), from_as_set=True)
            pairs[IPv4Prefix(network, length)] = (
                origin_set, self.monitor_counts[index]
            )
        return pairs

    def column_at(self, index: int) -> Tuple[int, int, int, int]:
        """One entry as ``(key, origin, flags, monitors)`` — the unit
        day-over-day deltas (:mod:`repro.delegation.delta`) move."""
        return (
            self.keys[index],
            self.origins[index],
            self.flags[index],
            self.monitor_counts[index],
        )

    def equals(self, other: "PairTable") -> bool:
        """Exact column equality (same pairs, same observed facts)."""
        return (
            self.keys == other.keys
            and self.origins == other.origins
            and self.flags == other.flags
            and self.monitor_counts == other.monitor_counts
        )

    def rows(self) -> Iterator[Tuple[IPv4Prefix, Optional[int], int]]:
        """Yield ``(prefix, sole_origin_or_None, monitor_count)``."""
        for index, key in enumerate(self.keys):
            network, length = unpack(key)
            unique = bool(self.flags[index] & UNIQUE_ORIGIN)
            yield (
                IPv4Prefix(network, length),
                self.origins[index] if unique else None,
                self.monitor_counts[index],
            )

    def __len__(self) -> int:
        return len(self.keys)

    def __bool__(self) -> bool:
        return bool(self.keys)

    def __repr__(self) -> str:
        return f"<PairTable with {len(self.keys)} pairs>"


class RoutingTable:
    """The routing table of a single monitor at one collector."""

    def __init__(self, collector: str, monitor_asn: int):
        self._collector = collector
        self._monitor = monitor_asn
        self._routes: PrefixTrie[ASPath] = PrefixTrie()

    @property
    def collector(self) -> str:
        return self._collector

    @property
    def monitor_asn(self) -> int:
        return self._monitor

    # -- mutation ------------------------------------------------------

    def announce(self, prefix: IPv4Prefix, as_path: ASPath) -> bool:
        """Install/replace a route; True if the table changed."""
        existing = self._routes.get(prefix)
        if existing == as_path:
            return False
        self._routes.insert(prefix, as_path)
        return True

    def withdraw(self, prefix: IPv4Prefix) -> bool:
        """Remove the route for ``prefix``; True if one existed."""
        return self._routes.delete(prefix)

    # -- queries ----------------------------------------------------------

    def route_for(self, prefix: IPv4Prefix) -> Optional[ASPath]:
        """Exact-match route lookup."""
        return self._routes.get(prefix)

    def best_match(
        self, prefix: IPv4Prefix
    ) -> Optional[Tuple[IPv4Prefix, ASPath]]:
        """Longest-prefix-match lookup (forwarding behaviour)."""
        return self._routes.longest_match(prefix)

    def prefixes(self) -> Iterator[IPv4Prefix]:
        return self._routes.keys()

    def records(self, date: datetime.date) -> Iterator[RouteRecord]:
        """Dump the table as :class:`RouteRecord` elements."""
        for prefix, as_path in self._routes.items():
            yield RouteRecord(
                collector=self._collector,
                monitor_asn=self._monitor,
                prefix=prefix,
                as_path=as_path,
                date=date,
            )

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        return prefix in self._routes

    # -- reconciliation ----------------------------------------------------

    def reconcile(
        self,
        desired: Dict[IPv4Prefix, ASPath],
        date: datetime.date,
    ) -> Tuple[List[RouteRecord], List[Withdrawal]]:
        """Move the table to ``desired``; return the implied updates.

        Produces the announce/withdraw messages a collector's update
        file would contain between two daily snapshots.
        """
        announcements: List[RouteRecord] = []
        withdrawals: List[Withdrawal] = []
        current = dict(self._routes.items())
        for prefix, as_path in desired.items():
            if current.get(prefix) != as_path:
                self.announce(prefix, as_path)
                announcements.append(
                    RouteRecord(
                        collector=self._collector,
                        monitor_asn=self._monitor,
                        prefix=prefix,
                        as_path=as_path,
                        date=date,
                    )
                )
        for prefix in current:
            if prefix not in desired:
                self.withdraw(prefix)
                withdrawals.append(
                    Withdrawal(
                        collector=self._collector,
                        monitor_asn=self._monitor,
                        prefix=prefix,
                        date=date,
                    )
                )
        return announcements, withdrawals
