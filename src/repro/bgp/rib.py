"""Per-monitor routing tables (RIBs).

A :class:`RoutingTable` tracks what one monitor currently routes.  The
collector system uses RIBs to derive update streams (announce on
appearance/path change, withdraw on disappearance) between consecutive
daily snapshots — the same RIB+updates structure the paper consumes
from RIPE RIS / Route Views / Isolario.
"""

from __future__ import annotations

import datetime
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.bgp.message import RouteRecord, Withdrawal
from repro.netbase.aspath import ASPath
from repro.netbase.prefix import IPv4Prefix
from repro.netbase.trie import PrefixTrie


class RoutingTable:
    """The routing table of a single monitor at one collector."""

    def __init__(self, collector: str, monitor_asn: int):
        self._collector = collector
        self._monitor = monitor_asn
        self._routes: PrefixTrie[ASPath] = PrefixTrie()

    @property
    def collector(self) -> str:
        return self._collector

    @property
    def monitor_asn(self) -> int:
        return self._monitor

    # -- mutation ------------------------------------------------------

    def announce(self, prefix: IPv4Prefix, as_path: ASPath) -> bool:
        """Install/replace a route; True if the table changed."""
        existing = self._routes.get(prefix)
        if existing == as_path:
            return False
        self._routes.insert(prefix, as_path)
        return True

    def withdraw(self, prefix: IPv4Prefix) -> bool:
        """Remove the route for ``prefix``; True if one existed."""
        return self._routes.delete(prefix)

    # -- queries ----------------------------------------------------------

    def route_for(self, prefix: IPv4Prefix) -> Optional[ASPath]:
        """Exact-match route lookup."""
        return self._routes.get(prefix)

    def best_match(
        self, prefix: IPv4Prefix
    ) -> Optional[Tuple[IPv4Prefix, ASPath]]:
        """Longest-prefix-match lookup (forwarding behaviour)."""
        return self._routes.longest_match(prefix)

    def prefixes(self) -> Iterator[IPv4Prefix]:
        return self._routes.keys()

    def records(self, date: datetime.date) -> Iterator[RouteRecord]:
        """Dump the table as :class:`RouteRecord` elements."""
        for prefix, as_path in self._routes.items():
            yield RouteRecord(
                collector=self._collector,
                monitor_asn=self._monitor,
                prefix=prefix,
                as_path=as_path,
                date=date,
            )

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        return prefix in self._routes

    # -- reconciliation ----------------------------------------------------

    def reconcile(
        self,
        desired: Dict[IPv4Prefix, ASPath],
        date: datetime.date,
    ) -> Tuple[List[RouteRecord], List[Withdrawal]]:
        """Move the table to ``desired``; return the implied updates.

        Produces the announce/withdraw messages a collector's update
        file would contain between two daily snapshots.
        """
        announcements: List[RouteRecord] = []
        withdrawals: List[Withdrawal] = []
        current = dict(self._routes.items())
        for prefix, as_path in desired.items():
            if current.get(prefix) != as_path:
                self.announce(prefix, as_path)
                announcements.append(
                    RouteRecord(
                        collector=self._collector,
                        monitor_asn=self._monitor,
                        prefix=prefix,
                        as_path=as_path,
                        date=date,
                    )
                )
        for prefix in current:
            if prefix not in desired:
                self.withdraw(prefix)
                withdrawals.append(
                    Withdrawal(
                        collector=self._collector,
                        monitor_asn=self._monitor,
                        prefix=prefix,
                        date=date,
                    )
                )
        return announcements, withdrawals
