"""AS-level topology with business relationships.

Routes only propagate along *valley-free* paths, which requires knowing
who is whose customer, provider, or peer.  The generator builds a
three-tier hierarchy (a tier-1 clique, mid-tier transit providers,
stub/edge networks) with configurable multi-homing — structurally the
shape real topologies have, which is what matters for which monitors
see which routes.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.errors import BgpError
from repro.netbase.asnum import validate_asn


class ASRelationship(enum.Enum):
    """Relationship of an edge, read as "left is <relationship> right"."""

    CUSTOMER_OF = "customer-of"
    PEER_WITH = "peer-with"


@dataclass(frozen=True)
class TopologyConfig:
    """Parameters for the hierarchical topology generator."""

    tier1_count: int = 8
    mid_count: int = 60
    stub_count: int = 400
    mid_provider_choices: Tuple[int, int] = (2, 4)
    stub_provider_choices: Tuple[int, int] = (1, 3)
    mid_peering_probability: float = 0.08
    first_asn: int = 1000
    seed: int = 7

    def validate(self) -> None:
        if self.tier1_count < 2:
            raise BgpError("need at least two tier-1 ASes")
        if self.mid_count < 1 or self.stub_count < 0:
            raise BgpError("invalid tier sizes")
        if not 0.0 <= self.mid_peering_probability <= 1.0:
            raise BgpError("peering probability must be in [0, 1]")


class ASTopology:
    """A set of ASes plus customer/provider and peer relationships."""

    def __init__(self) -> None:
        self._asns: Set[int] = set()
        self._providers: Dict[int, Set[int]] = {}
        self._customers: Dict[int, Set[int]] = {}
        self._peers: Dict[int, Set[int]] = {}
        self._tier: Dict[int, int] = {}

    # -- construction ------------------------------------------------------

    def add_as(self, asn: int, tier: int = 3) -> None:
        validate_asn(asn)
        if asn in self._asns:
            raise BgpError(f"AS{asn} already exists")
        self._asns.add(asn)
        self._providers[asn] = set()
        self._customers[asn] = set()
        self._peers[asn] = set()
        self._tier[asn] = tier

    def add_customer_provider(self, customer: int, provider: int) -> None:
        """Record that ``customer`` buys transit from ``provider``."""
        self._require(customer)
        self._require(provider)
        if customer == provider:
            raise BgpError("an AS cannot be its own provider")
        if provider in self._peers[customer]:
            raise BgpError(f"AS{customer}/AS{provider} already peer")
        self._providers[customer].add(provider)
        self._customers[provider].add(customer)

    def add_peering(self, left: int, right: int) -> None:
        """Record a settlement-free peering between two ASes."""
        self._require(left)
        self._require(right)
        if left == right:
            raise BgpError("an AS cannot peer with itself")
        if right in self._providers[left] or left in self._providers[right]:
            raise BgpError(
                f"AS{left}/AS{right} already have a transit relationship"
            )
        self._peers[left].add(right)
        self._peers[right].add(left)

    def _require(self, asn: int) -> None:
        if asn not in self._asns:
            raise BgpError(f"unknown AS{asn}")

    # -- accessors -----------------------------------------------------------

    @property
    def asns(self) -> FrozenSet[int]:
        return frozenset(self._asns)

    def providers_of(self, asn: int) -> FrozenSet[int]:
        self._require(asn)
        return frozenset(self._providers[asn])

    def customers_of(self, asn: int) -> FrozenSet[int]:
        self._require(asn)
        return frozenset(self._customers[asn])

    def peers_of(self, asn: int) -> FrozenSet[int]:
        self._require(asn)
        return frozenset(self._peers[asn])

    def tier_of(self, asn: int) -> int:
        self._require(asn)
        return self._tier[asn]

    def tier_members(self, tier: int) -> List[int]:
        return sorted(a for a, t in self._tier.items() if t == tier)

    def edge_count(self) -> int:
        transit = sum(len(p) for p in self._providers.values())
        peering = sum(len(p) for p in self._peers.values()) // 2
        return transit + peering

    def __len__(self) -> int:
        return len(self._asns)

    def __contains__(self, asn: int) -> bool:
        return asn in self._asns

    def __repr__(self) -> str:
        return (
            f"<ASTopology {len(self)} ASes, {self.edge_count()} edges>"
        )

    # -- generation ------------------------------------------------------------

    @classmethod
    def generate(cls, config: TopologyConfig) -> "ASTopology":
        """Generate a deterministic three-tier topology.

        Tier 1 is a full peering clique; every mid-tier AS buys transit
        from 2–4 tier-1/mid providers (plus occasional mid–mid
        peering); every stub buys transit from 1–3 mid providers.
        """
        config.validate()
        rng = random.Random(config.seed)
        topology = cls()
        next_asn = config.first_asn

        tier1: List[int] = []
        for _ in range(config.tier1_count):
            topology.add_as(next_asn, tier=1)
            tier1.append(next_asn)
            next_asn += 1
        for i, left in enumerate(tier1):
            for right in tier1[i + 1:]:
                topology.add_peering(left, right)

        mids: List[int] = []
        for _ in range(config.mid_count):
            topology.add_as(next_asn, tier=2)
            mids.append(next_asn)
            next_asn += 1
        for mid in mids:
            count = rng.randint(*config.mid_provider_choices)
            # Mid-tier providers come from tier 1 and earlier mids.
            candidates = tier1 + [m for m in mids if m < mid]
            providers = rng.sample(candidates, min(count, len(candidates)))
            for provider in providers:
                topology.add_customer_provider(mid, provider)
        for i, left in enumerate(mids):
            for right in mids[i + 1:]:
                if left in topology.providers_of(right):
                    continue
                if right in topology.providers_of(left):
                    continue
                if rng.random() < config.mid_peering_probability:
                    topology.add_peering(left, right)

        for _ in range(config.stub_count):
            topology.add_as(next_asn, tier=3)
            count = rng.randint(*config.stub_provider_choices)
            providers = rng.sample(mids, min(count, len(mids)))
            for provider in providers:
                topology.add_customer_provider(next_asn, provider)
            next_asn += 1

        return topology

    def well_connected_asns(self, count: int, seed: int = 0) -> List[int]:
        """Pick ``count`` ASes suitable as collector monitors.

        Collector peers are overwhelmingly tier-1/tier-2 networks; the
        pick is deterministic for a given seed.
        """
        rng = random.Random(seed)
        candidates = self.tier_members(1) + self.tier_members(2)
        if count > len(candidates):
            candidates = candidates + self.tier_members(3)
        if count > len(candidates):
            raise BgpError(
                f"cannot pick {count} monitors from {len(candidates)} ASes"
            )
        return sorted(rng.sample(candidates, count))
