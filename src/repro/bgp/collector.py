"""Route collector projects and their daily archives.

A :class:`Collector` has a set of monitor (peer) ASes; given the
announcements of a day and a :class:`~repro.bgp.propagation.
PropagationModel`, it materializes what each monitor's RIB contains.
:class:`CollectorSystem` groups the projects the paper uses (RIS,
Route Views, Isolario) and can write/read daily JSONL archives in a
``<archive>/<collector>/<date>.jsonl`` layout.
"""

from __future__ import annotations

import datetime
import json
import pathlib
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Union

from repro.bgp.message import Announcement, RouteRecord
from repro.bgp.propagation import PropagationModel
from repro.errors import CollectorDataError
from repro.netbase.aspath import ASPath, ASPathSegment, SegmentType


class Collector:
    """One collector project with its monitor ASes."""

    def __init__(self, name: str, monitor_asns: Iterable[int]):
        if not name:
            raise CollectorDataError("collector needs a name")
        self._name = name
        self._monitors = frozenset(monitor_asns)
        if not self._monitors:
            raise CollectorDataError(f"collector {name} has no monitors")

    @property
    def name(self) -> str:
        return self._name

    @property
    def monitors(self) -> FrozenSet[int]:
        return self._monitors

    def records_for_day(
        self,
        announcements: Iterable[Announcement],
        propagation: PropagationModel,
        date: datetime.date,
    ) -> Iterator[RouteRecord]:
        """Yield the day's RIB records for every monitor of this
        collector.

        A monitor holds a route iff valley-free propagation reaches it
        — unless the announcement restricts propagation, in which case
        only the allowed subset sees it (still intersected with
        topological reachability: a restriction cannot create
        visibility that the topology forbids).
        """
        for announcement in announcements:
            origin = announcement.origin_asn
            if origin in propagation.topology:
                # A monitor that originates the route holds it itself.
                reachable = propagation.receivers(origin) | {origin}
            else:
                reachable = frozenset()
            visible = self._monitors & reachable
            if announcement.restricted_to_monitors is not None:
                visible &= announcement.restricted_to_monitors
            for monitor in sorted(visible):
                if monitor == origin:
                    as_path = ASPath.from_asns([origin])
                else:
                    as_path = propagation.path(origin, monitor)
                if as_path is None:  # pragma: no cover - reachability implies path
                    continue
                if announcement.as_set_origin:
                    as_path = _with_as_set_origin(as_path)
                yield RouteRecord(
                    collector=self._name,
                    monitor_asn=monitor,
                    prefix=announcement.prefix,
                    as_path=as_path,
                    date=date,
                )

    def __repr__(self) -> str:
        return f"<Collector {self._name}: {len(self._monitors)} monitors>"


def _with_as_set_origin(as_path: ASPath) -> ASPath:
    """Rewrite the path's origin into a singleton AS_SET.

    Models proxy aggregation artifacts: the announcement's origin shows
    up as ``{origin}``, which inference step (iii) must discard.
    """
    asns = list(as_path.asns())
    head, origin = asns[:-1], asns[-1]
    segments = []
    if head:
        segments.append(ASPathSegment(SegmentType.SEQUENCE, head))
    segments.append(ASPathSegment(SegmentType.SET, [origin]))
    return ASPath(segments)


class CollectorSystem:
    """All collector projects plus archive I/O."""

    def __init__(
        self,
        collectors: Iterable[Collector],
        propagation: PropagationModel,
    ):
        self._collectors: Dict[str, Collector] = {}
        for collector in collectors:
            if collector.name in self._collectors:
                raise CollectorDataError(
                    f"duplicate collector {collector.name}"
                )
            self._collectors[collector.name] = collector
        if not self._collectors:
            raise CollectorDataError("need at least one collector")
        self._propagation = propagation
        # Both caches are sound because the collector set and the
        # propagation model are fixed for the system's lifetime.
        self._all_monitors: Optional[FrozenSet[int]] = None
        self._visible_by_origin: Dict[int, FrozenSet[int]] = {}

    @property
    def propagation(self) -> PropagationModel:
        return self._propagation

    def collectors(self) -> List[Collector]:
        return [self._collectors[name] for name in sorted(self._collectors)]

    def collector(self, name: str) -> Collector:
        try:
            return self._collectors[name]
        except KeyError:
            raise CollectorDataError(f"unknown collector {name}") from None

    def all_monitors(self) -> FrozenSet[int]:
        """The union of all monitor ASes across projects.

        This is the denominator of the paper's "seen by less than half
        of all BGP monitors" visibility filter.
        """
        if self._all_monitors is None:
            monitors: FrozenSet[int] = frozenset()
            for collector in self._collectors.values():
                monitors |= collector.monitors
            self._all_monitors = monitors
        return self._all_monitors

    def _visible_monitors(self, origin: int) -> FrozenSet[int]:
        """Which monitors an unrestricted announcement from ``origin``
        reaches — ``monitors & (receivers(origin) | {origin})``, cached
        per origin because a day announces thousands of prefixes from
        the same few hundred origins."""
        visible = self._visible_by_origin.get(origin)
        if visible is None:
            propagation = self._propagation
            monitors = self.all_monitors()
            if origin in propagation.topology:
                visible = (monitors & propagation.receivers(origin)) | (
                    {origin} & monitors
                )
            else:
                visible = frozenset()
            self._visible_by_origin[origin] = visible
        return visible

    # -- in-memory generation -------------------------------------------

    def records_for_day(
        self,
        announcements: Iterable[Announcement],
        date: datetime.date,
    ) -> Iterator[RouteRecord]:
        """Yield the day's records across every collector."""
        announcements = list(announcements)
        for collector in self.collectors():
            yield from collector.records_for_day(
                announcements, self._propagation, date
            )

    def pair_counts_for_day(
        self,
        announcements: Iterable[Announcement],
    ) -> "Dict[object, tuple]":
        """Aggregate the day directly into prefix-origin visibility.

        Returns ``prefix -> (OriginSet, distinct monitor count)`` —
        exactly what :func:`repro.bgp.stream.prefix_origin_pairs`
        computes from materialized records, but without building one
        record per (monitor, prefix).  This fast path makes multi-year
        daily inference tractable; tests assert its equivalence to the
        record-level path.
        """
        from repro.netbase.asnum import OriginSet

        propagation = self._propagation
        monitors = self.all_monitors()
        origins: Dict[object, OriginSet] = {}
        seen_monitors: Dict[object, set] = {}
        for announcement in announcements:
            origin = announcement.origin_asn
            if origin in propagation.topology:
                reachable = propagation.receivers(origin) | {origin}
            else:
                reachable = frozenset()
            visible = monitors & reachable
            if announcement.restricted_to_monitors is not None:
                visible &= announcement.restricted_to_monitors
            if not visible:
                continue
            origin_set = OriginSet(
                (origin,), from_as_set=announcement.as_set_origin
            )
            prefix = announcement.prefix
            existing = origins.get(prefix)
            origins[prefix] = (
                origin_set if existing is None else existing.merge(origin_set)
            )
            seen_monitors.setdefault(prefix, set()).update(visible)
        return {
            prefix: (origins[prefix], len(seen_monitors[prefix]))
            for prefix in origins
        }

    def pair_table_for_day(self, announcements: Iterable[Announcement]):
        """Aggregate the day straight into a columnar
        :class:`~repro.bgp.rib.PairTable`.

        Same facts as :meth:`pair_counts_for_day` — per-prefix origin
        uniqueness and distinct monitor count — but with no
        :class:`~repro.netbase.asnum.OriginSet` or per-pair set churn:
        each prefix holds one mutable slot ``[origin, as_set, visible,
        multi_origin]``, and the per-origin visible-monitor frozenset
        is shared across every announcement from that origin.  Tests
        assert row-level equivalence with the object path.
        """
        from repro.bgp.rib import PairTable

        # slot = [first origin, saw AS_SET, visible monitors (frozenset
        # until a second distinct set arrives), saw another origin]
        slots: Dict[int, list] = {}
        for announcement in announcements:
            origin = announcement.origin_asn
            visible = self._visible_monitors(origin)
            if announcement.restricted_to_monitors is not None:
                visible = visible & announcement.restricted_to_monitors
            if not visible:
                continue
            prefix = announcement.prefix
            key = (prefix.network << 6) | prefix.length
            slot = slots.get(key)
            if slot is None:
                slots[key] = [
                    origin, announcement.as_set_origin, visible, False
                ]
                continue
            if origin != slot[0]:
                slot[3] = True
            if announcement.as_set_origin:
                slot[1] = True
            monitors = slot[2]
            if monitors is not visible:
                if type(monitors) is frozenset:
                    monitors = set(monitors)
                    slot[2] = monitors
                monitors.update(visible)
        aggregate = {}
        for key, slot in slots.items():
            unique = not (slot[1] or slot[3])
            aggregate[key] = (
                slot[0] if unique else 0, unique, len(slot[2])
            )
        return PairTable.from_aggregate(aggregate)

    # -- archives --------------------------------------------------------

    def write_day(
        self,
        announcements: Iterable[Announcement],
        date: datetime.date,
        archive_dir: Union[str, pathlib.Path],
    ) -> List[str]:
        """Write one JSONL RIB file per collector; returns the paths."""
        base = pathlib.Path(archive_dir)
        announcements = list(announcements)
        paths: List[str] = []
        for collector in self.collectors():
            directory = base / collector.name
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"{date.isoformat()}.jsonl"
            with open(path, "w", encoding="utf-8") as handle:
                for record in collector.records_for_day(
                    announcements, self._propagation, date
                ):
                    handle.write(json.dumps(record.to_json()) + "\n")
            paths.append(str(path))
        return paths

    @staticmethod
    def read_day(
        archive_dir: Union[str, pathlib.Path],
        date: datetime.date,
        collector_name: Optional[str] = None,
    ) -> Iterator[RouteRecord]:
        """Read the day's records back from an archive directory."""
        base = pathlib.Path(archive_dir)
        if collector_name is not None:
            directories = [base / collector_name]
        else:
            directories = sorted(d for d in base.iterdir() if d.is_dir())
        for directory in directories:
            path = directory / f"{date.isoformat()}.jsonl"
            if not path.exists():
                raise CollectorDataError(f"missing archive file: {path}")
            with open(path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        yield RouteRecord.from_json(json.loads(line))
                    except (json.JSONDecodeError, KeyError, ValueError) as exc:
                        raise CollectorDataError(
                            f"corrupt archive line in {path}: {exc}"
                        ) from exc
