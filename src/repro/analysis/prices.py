"""Fig. 1: price-per-IP analysis of the transaction dataset.

Reproduces every statistic §3 derives from the broker data:

- box stats per (size bucket, region, quarter) — the Fig. 1 panels,
- the regional-difference test ("no statistically significant
  difference in pricing across the regions"),
- the doubling factor since 2016,
- consolidation detection (flat median + collapsed variance from
  spring 2019).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import BoxStats, box_stats, coefficient_of_variation, kruskal_wallis
from repro.market.transactions import TransactionDataset
from repro.registry.rir import RIR

#: Fig. 1 size buckets: small blocks individually, mid-range grouped.
SIZE_BUCKETS: Tuple[Tuple[str, Tuple[int, ...]], ...] = (
    ("/24", (24,)),
    ("/23", (23,)),
    ("/22", (22,)),
    ("/21-/17", (21, 20, 19, 18, 17)),
    ("/16", (16,)),
)

#: The three regions with vibrant markets (AFRINIC/LACNIC excluded).
CORE_REGIONS: Tuple[RIR, ...] = (RIR.APNIC, RIR.ARIN, RIR.RIPE)


@dataclass(frozen=True)
class PriceQuarter:
    """One Fig. 1 box: a (quarter, bucket, region) sample summary."""

    year: int
    quarter: int
    bucket: str
    region: Optional[RIR]
    stats: BoxStats


def quarterly_price_stats(
    dataset: TransactionDataset,
    *,
    by_region: bool = False,
) -> List[PriceQuarter]:
    """Box stats per quarter and size bucket (optionally per region)."""
    core = dataset.for_regions(CORE_REGIONS)
    results: List[PriceQuarter] = []
    for (year, quarter), bucket_data in core.by_quarter().items():
        for bucket_name, lengths in SIZE_BUCKETS:
            in_bucket = bucket_data.for_lengths(lengths)
            if by_region:
                for region, regional in in_bucket.by_region().items():
                    if len(regional) == 0:
                        continue
                    results.append(
                        PriceQuarter(
                            year=year,
                            quarter=quarter,
                            bucket=bucket_name,
                            region=region,
                            stats=box_stats(regional.prices()),
                        )
                    )
            elif len(in_bucket) > 0:
                results.append(
                    PriceQuarter(
                        year=year,
                        quarter=quarter,
                        bucket=bucket_name,
                        region=None,
                        stats=box_stats(in_bucket.prices()),
                    )
                )
    return results


def regional_price_difference(
    dataset: TransactionDataset,
) -> Tuple[float, float]:
    """Kruskal–Wallis H-test across the three core regions' prices.

    The paper finds no statistically significant difference; a p-value
    above the usual 0.05 reproduces that conclusion.
    """
    groups = [
        dataset.for_regions([region]).prices()
        for region in CORE_REGIONS
    ]
    return kruskal_wallis(groups)


def doubling_factor(
    dataset: TransactionDataset,
    *,
    baseline_year: int = 2016,
    final_year: int = 2020,
) -> float:
    """Median price of the final year over the baseline year (§3: ≈2)."""
    def year_prices(year: int) -> List[float]:
        window = dataset.in_window(
            datetime.date(year, 1, 1), datetime.date(year + 1, 1, 1)
        )
        return window.prices()

    base = year_prices(baseline_year)
    final = year_prices(final_year)
    if not base or not final:
        raise ValueError("not enough data to compute the doubling factor")
    return box_stats(final).median / box_stats(base).median


def mean_price_per_ip(
    dataset: TransactionDataset,
    start: datetime.date,
    end: datetime.date,
) -> float:
    """Average market price in a window (the paper's ≈$22.50)."""
    window = dataset.in_window(start, end).for_regions(CORE_REGIONS)
    prices = window.prices()
    if not prices:
        raise ValueError("no transactions in window")
    return sum(prices) / len(prices)


def consolidation_quarter(
    dataset: TransactionDataset,
    *,
    flatness_threshold: float = 0.06,
    variance_ratio_threshold: float = 0.7,
    stable_quarters: int = 3,
) -> Optional[Tuple[int, int]]:
    """Detect the start of the consolidation phase.

    A quarter opens the consolidation if, from it onward for at least
    ``stable_quarters`` quarters, (i) the median price moves less than
    ``flatness_threshold`` per quarter and (ii) the within-quarter
    coefficient of variation drops below ``variance_ratio_threshold``
    times the pre-period average.  Returns the (year, quarter) or None.
    """
    core = dataset.for_regions(CORE_REGIONS)
    quarters = list(core.by_quarter().items())
    if len(quarters) < stable_quarters + 2:
        return None
    medians = [box_stats(q.prices()).median for _key, q in quarters]
    cvs = [coefficient_of_variation(q.prices()) for _key, q in quarters]
    overall_cv = sum(cvs) / len(cvs)
    for i in range(1, len(quarters) - stable_quarters + 1):
        window_flat = all(
            abs(medians[j + 1] - medians[j]) / medians[j]
            < flatness_threshold
            for j in range(i, min(i + stable_quarters, len(quarters) - 1))
        )
        window_calm = all(
            cvs[j] < overall_cv * variance_ratio_threshold
            for j in range(i, i + stable_quarters)
        )
        if window_flat and window_calm:
            return quarters[i][0]
    return None
