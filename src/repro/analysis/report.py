"""Plain-text table rendering for benchmark output.

The benchmark harness prints "the same rows the paper reports"; this
module renders them as aligned ASCII tables so `pytest benchmarks/`
output is directly comparable against the paper's figures.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    materialized: List[List[str]] = [
        [str(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(widths[i]) for i, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_comparison(
    title: str,
    entries: Iterable[Sequence[object]],
) -> str:
    """Render (metric, paper value, measured value) comparison rows."""
    return render_table(
        ["metric", "paper", "measured"], entries, title=title
    )
