"""The paper's analyses: one module per evaluation artifact.

- :mod:`~repro.analysis.stats` — box statistics and significance tests,
- :mod:`~repro.analysis.prices` — Fig. 1 (price per IP by size, region,
  quarter; regional-difference test; consolidation detection),
- :mod:`~repro.analysis.transfers` — Fig. 2 (market transfers per
  region per quarter, with M&A removal where the feed labels it),
- :mod:`~repro.analysis.interrir` — Fig. 3 (inter-RIR flows),
- :mod:`~repro.analysis.leasing_prices` — Fig. 4 (advertised leasing
  price series),
- :mod:`~repro.analysis.market_size` — §4 market-size estimation,
- :mod:`~repro.analysis.report` — plain-text table rendering.
"""

from repro.analysis.fig_data import (
    export_fig1_prices,
    export_fig2_transfers,
    export_fig4_leasing,
    export_fig5_rules,
    export_fig6_series,
)
from repro.analysis.interrir import InterRirYear, inter_rir_flows, inter_rir_trend
from repro.analysis.leasing_prices import (
    LeasingPriceSummary,
    price_changes,
    provider_series,
    summarize_leasing_prices,
)
from repro.analysis.market_size import MarketSizeEstimate, estimate_market_size
from repro.analysis.mna_heuristic import (
    HeuristicEvaluation,
    MnaHeuristic,
    MnaHeuristicConfig,
    corrected_market_counts,
    evaluate_heuristic,
    parameter_sensitivity,
)
from repro.analysis.prices import (
    PriceQuarter,
    consolidation_quarter,
    doubling_factor,
    quarterly_price_stats,
    regional_price_difference,
)
from repro.analysis.stats import BoxStats, kruskal_wallis
from repro.analysis.transfers import market_start_dates, transfer_counts

__all__ = [
    "BoxStats",
    "HeuristicEvaluation",
    "InterRirYear",
    "MnaHeuristic",
    "MnaHeuristicConfig",
    "corrected_market_counts",
    "evaluate_heuristic",
    "export_fig1_prices",
    "export_fig2_transfers",
    "export_fig4_leasing",
    "export_fig5_rules",
    "export_fig6_series",
    "parameter_sensitivity",
    "LeasingPriceSummary",
    "MarketSizeEstimate",
    "PriceQuarter",
    "consolidation_quarter",
    "doubling_factor",
    "estimate_market_size",
    "inter_rir_flows",
    "inter_rir_trend",
    "kruskal_wallis",
    "market_start_dates",
    "price_changes",
    "provider_series",
    "quarterly_price_stats",
    "regional_price_difference",
    "summarize_leasing_prices",
    "transfer_counts",
]
