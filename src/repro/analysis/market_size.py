"""§4: estimating the size of the leasing market.

The paper's conclusion: BGP and RDAP delegations are complementary —
BGP captures usage, RDAP the administrative record — and neither alone
sees the whole market.  The estimator combines both: the union of
delegated address space, with the mutual coverage report explaining
how much each source contributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.delegation.compare import CoverageReport, compare_delegations
from repro.delegation.model import RdapDelegation
from repro.netbase.prefix import IPv4Prefix
from repro.netbase.prefixset import address_count


@dataclass(frozen=True)
class MarketSizeEstimate:
    """Combined leasing-market size estimate."""

    coverage: CoverageReport
    bgp_only_addresses: int
    rdap_only_addresses: int
    combined_addresses: int

    @property
    def bgp_alone_underestimates_by(self) -> float:
        """Factor by which BGP alone undershoots the combined estimate."""
        if self.coverage.bgp_addresses == 0:
            return float("inf")
        return self.combined_addresses / self.coverage.bgp_addresses

    def summary_lines(self) -> List[str]:
        lines = list(self.coverage.summary_lines())
        lines.append(
            f"Combined market size: {self.combined_addresses} addresses "
            f"({self.bgp_alone_underestimates_by:.1f}x the BGP-only view)"
        )
        return lines


def estimate_market_size(
    bgp_prefixes: Iterable[IPv4Prefix],
    rdap_delegations: Iterable[RdapDelegation],
) -> MarketSizeEstimate:
    """Combine both delegation views into one market-size estimate."""
    bgp = list(set(bgp_prefixes))
    rdap_list = list(rdap_delegations)
    coverage = compare_delegations(bgp, rdap_list)
    rdap_prefixes: List[IPv4Prefix] = []
    for delegation in rdap_list:
        rdap_prefixes.extend(delegation.prefixes())
    combined = address_count(bgp + rdap_prefixes)
    overlap_on_rdap = round(
        coverage.bgp_over_rdap * coverage.rdap_addresses
    )
    overlap_on_bgp = round(
        coverage.rdap_over_bgp * coverage.bgp_addresses
    )
    return MarketSizeEstimate(
        coverage=coverage,
        bgp_only_addresses=coverage.bgp_addresses - overlap_on_bgp,
        rdap_only_addresses=coverage.rdap_addresses - overlap_on_rdap,
        combined_addresses=combined,
    )
