"""Fig. 2: market transfers per region, in three-month bins.

The analysis consumes the *published* feeds, so it can only remove M&A
transfers for the RIRs that label them (AFRINIC, ARIN, RIPE NCC) — for
APNIC and LACNIC the market counts necessarily include consolidation
transfers, exactly as in the paper.
"""

from __future__ import annotations

import datetime
from typing import Dict, List, Optional, Tuple

from repro.registry.rir import RIR, profile_for
from repro.registry.transfers import TransferLedger, TransferRecord, TransferType


def _bin_start(date: datetime.date, bin_months: int) -> datetime.date:
    month_index = (date.month - 1) // bin_months * bin_months
    return datetime.date(date.year, month_index + 1, 1)


def is_market_transfer(record: TransferRecord) -> bool:
    """True if the published feed presents this as a market transfer.

    For labelling RIRs, M&A records are excluded; for APNIC/LACNIC the
    label is absent so everything counts (the feed ambiguity the paper
    discusses).
    """
    published = record.published_type()
    if published is TransferType.MERGER_ACQUISITION:
        return False
    return True


def transfer_counts(
    ledger: TransferLedger,
    *,
    bin_months: int = 3,
    include_inter_rir: bool = False,
) -> Dict[RIR, List[Tuple[datetime.date, int]]]:
    """Per-region market-transfer counts in ``bin_months`` bins.

    The region of a transfer is its *source* RIR (the registry whose
    feed would carry it as an outgoing market move); intra-RIR records
    dominate, and inter-RIR ones are excluded by default to match the
    Fig. 2 view.
    """
    counters: Dict[RIR, Dict[datetime.date, int]] = {rir: {} for rir in RIR}
    for record in ledger.records():
        if record.is_inter_rir and not include_inter_rir:
            continue
        if not is_market_transfer(record):
            continue
        bucket = _bin_start(record.date, bin_months)
        region = record.source_rir
        counters[region][bucket] = counters[region].get(bucket, 0) + 1
    return {
        rir: sorted(counts.items())
        for rir, counts in counters.items()
    }


def market_start_dates(
    ledger: TransferLedger,
    *,
    minimum_quarterly: int = 5,
) -> Dict[RIR, Optional[datetime.date]]:
    """First quarter in which each region traded at least
    ``minimum_quarterly`` market transfers.

    Fig. 2's observation: these line up with the last-/8 dates.
    """
    counts = transfer_counts(ledger)
    starts: Dict[RIR, Optional[datetime.date]] = {}
    for rir, series in counts.items():
        starts[rir] = None
        for bucket, count in series:
            if count >= minimum_quarterly:
                starts[rir] = bucket
                break
    return starts


def market_starts_after_last_slash8(
    ledger: TransferLedger,
) -> Dict[RIR, bool]:
    """Check Fig. 2's alignment: market start ≥ last-/8 date.

    Regions without a market (AFRINIC/LACNIC negligible counts) report
    True trivially — "no market" does not violate the alignment.
    """
    starts = market_start_dates(ledger)
    verdict: Dict[RIR, bool] = {}
    for rir, start in starts.items():
        if start is None:
            verdict[rir] = True
            continue
        # Compare at quarter granularity: the last-/8 quarter counts.
        threshold = _bin_start(profile_for(rir).last_slash8_date, 3)
        verdict[rir] = start >= threshold
    return verdict


def seasonal_ratio(
    series: List[Tuple[datetime.date, int]],
    months: Tuple[int, ...] = (10,),
) -> float:
    """Mean count of bins starting in ``months`` over the other bins.

    RIPE's year-end pattern shows up as a Q4/other ratio above one.
    """
    selected = [count for date, count in series if date.month in months]
    others = [count for date, count in series if date.month not in months]
    if not selected or not others:
        return 1.0
    return (sum(selected) / len(selected)) / (sum(others) / len(others))
