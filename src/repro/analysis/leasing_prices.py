"""Fig. 4: advertised leasing prices over time.

Rebuilds the figure's series from a scrape log and derives §4's
claims: the $0.30–$2.33 range, no structural difference between pure
leasing and hosting-bundled providers, exactly three providers changing
their price, and IP-AS's January spike more than 10× the floor.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.stats import kruskal_wallis
from repro.market.leasing import ScrapeLog, ScrapeRecord


@dataclass(frozen=True)
class LeasingPriceSummary:
    """§4's headline numbers on the leasing market."""

    provider_count: int
    min_price: float
    max_price: float
    changed_providers: Tuple[str, ...]
    max_spike_ratio: float
    bundled_vs_pure_pvalue: float

    @property
    def converged(self) -> bool:
        """The paper reads the huge spread as a non-converged market."""
        return self.max_price / self.min_price < 2.0


def provider_series(
    records: List[ScrapeRecord],
) -> Dict[str, List[Tuple[datetime.date, float]]]:
    """provider → [(date, price), ...] sorted by date."""
    series: Dict[str, List[Tuple[datetime.date, float]]] = {}
    for record in records:
        series.setdefault(record.provider, []).append(
            (record.date, record.price)
        )
    for points in series.values():
        points.sort()
    return series


def price_changes(
    records: List[ScrapeRecord],
) -> Dict[str, List[Tuple[datetime.date, float, float]]]:
    """provider → [(date, old, new)] for every advertised change."""
    changes: Dict[str, List[Tuple[datetime.date, float, float]]] = {}
    for provider, points in provider_series(records).items():
        for (date_a, price_a), (date_b, price_b) in zip(points, points[1:]):
            del date_a
            if price_b != price_a:
                changes.setdefault(provider, []).append(
                    (date_b, price_a, price_b)
                )
    return changes


def summarize_leasing_prices(
    log: ScrapeLog,
    start: datetime.date,
    end: datetime.date,
    *,
    step_days: int = 7,
) -> LeasingPriceSummary:
    """Scrape the window and compute the §4 summary."""
    records = log.scrape_series(start, end, step_days)
    # Always include the final scrape date itself (the paper's last
    # scrape on 2020-06-01 is where the nine extra providers appear).
    if not any(record.date == end for record in records):
        records.extend(log.scrape(end))
    series = provider_series(records)
    prices = [price for record in records for price in [record.price]]
    changed = tuple(sorted(price_changes(records)))
    bundled = [r.price for r in records if r.bundles_hosting]
    pure = [r.price for r in records if not r.bundles_hosting]
    if bundled and pure:
        _h, p_value = kruskal_wallis([bundled, pure])
    else:
        p_value = 1.0
    # Spike ratio: max concurrent price over min concurrent price.
    by_date: Dict[datetime.date, List[float]] = {}
    for record in records:
        by_date.setdefault(record.date, []).append(record.price)
    spike = max(
        max(day_prices) / min(day_prices)
        for day_prices in by_date.values()
    )
    return LeasingPriceSummary(
        provider_count=len(series),
        min_price=min(prices),
        max_price=max(prices),
        changed_providers=changed,
        max_spike_ratio=spike,
        bundled_vs_pure_pvalue=p_value,
    )
