"""Inferring M&A transfers from unlabeled feeds — with evaluation.

APNIC and LACNIC publish their transfer statistics without M&A labels,
so their market counts are contaminated by consolidation transfers.
Giotsas et al. proposed heuristics to separate the two, but — as the
paper notes when declining to use them — "the authors do neither
present an evaluation nor an analysis of the output's sensibility to
the input parameters".

This module supplies both missing pieces.  The heuristic itself keys
on transfer *structure* (mergers move a whole company's holdings:
several blocks, lots of addresses, in one record), and because the
simulator knows every record's true type, the heuristic can be scored
with real precision/recall and swept across its parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.registry.rir import RIR
from repro.registry.transfers import TransferLedger, TransferRecord, TransferType


@dataclass(frozen=True)
class MnaHeuristicConfig:
    """Decision thresholds for calling a transfer M&A.

    A record is classified M&A when it moves at least ``min_blocks``
    blocks, or at least ``min_addresses`` addresses (when set).
    """

    min_blocks: int = 2
    min_addresses: Optional[int] = None

    def __post_init__(self) -> None:
        if self.min_blocks < 1:
            raise ValueError("min_blocks must be at least 1")
        if self.min_addresses is not None and self.min_addresses < 1:
            raise ValueError("min_addresses must be positive")


class MnaHeuristic:
    """Structure-based M&A classifier for transfer records."""

    def __init__(self, config: Optional[MnaHeuristicConfig] = None):
        self._config = config or MnaHeuristicConfig()

    @property
    def config(self) -> MnaHeuristicConfig:
        return self._config

    def classify(self, record: TransferRecord) -> TransferType:
        """Guess the record's type from its structure alone."""
        if len(record.prefixes) >= self._config.min_blocks:
            return TransferType.MERGER_ACQUISITION
        if (
            self._config.min_addresses is not None
            and record.addresses >= self._config.min_addresses
        ):
            return TransferType.MERGER_ACQUISITION
        return TransferType.MARKET


@dataclass(frozen=True)
class HeuristicEvaluation:
    """Confusion-matrix summary of a heuristic run."""

    true_positive: int
    false_positive: int
    true_negative: int
    false_negative: int

    @property
    def precision(self) -> float:
        denominator = self.true_positive + self.false_positive
        return self.true_positive / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positive + self.false_negative
        return self.true_positive / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def total(self) -> int:
        return (
            self.true_positive + self.false_positive
            + self.true_negative + self.false_negative
        )


def evaluate_heuristic(
    records: Iterable[TransferRecord],
    heuristic: MnaHeuristic,
    *,
    regions: Optional[Iterable[RIR]] = None,
) -> HeuristicEvaluation:
    """Score ``heuristic`` against the records' ground-truth types.

    ``regions`` restricts the evaluation (the interesting case is the
    unlabeled feeds: APNIC and LACNIC).
    """
    region_filter = set(regions) if regions is not None else None
    tp = fp = tn = fn = 0
    for record in records:
        if record.is_inter_rir:
            continue
        if region_filter is not None and record.source_rir not in region_filter:
            continue
        predicted = heuristic.classify(record)
        actual = record.true_type
        if actual is TransferType.MERGER_ACQUISITION:
            if predicted is TransferType.MERGER_ACQUISITION:
                tp += 1
            else:
                fn += 1
        else:
            if predicted is TransferType.MERGER_ACQUISITION:
                fp += 1
            else:
                tn += 1
    return HeuristicEvaluation(tp, fp, tn, fn)


def parameter_sensitivity(
    ledger: TransferLedger,
    min_blocks_values: Sequence[int] = (1, 2, 3, 4, 5),
    *,
    regions: Optional[Iterable[RIR]] = None,
) -> List[Tuple[int, HeuristicEvaluation]]:
    """The missing sensitivity analysis: F1 across the threshold sweep.

    Returns ``[(min_blocks, evaluation), ...]`` so callers can see
    where the heuristic is robust and where it collapses — exactly
    what the paper said Giotsas et al. did not provide.
    """
    records = ledger.records()
    region_list = list(regions) if regions is not None else None
    results: List[Tuple[int, HeuristicEvaluation]] = []
    for min_blocks in min_blocks_values:
        heuristic = MnaHeuristic(MnaHeuristicConfig(min_blocks=min_blocks))
        results.append(
            (
                min_blocks,
                evaluate_heuristic(
                    records, heuristic, regions=region_list
                ),
            )
        )
    return results


def corrected_market_counts(
    ledger: TransferLedger,
    heuristic: MnaHeuristic,
    region: RIR,
) -> Dict[str, int]:
    """Apply the heuristic to an unlabeled region's feed.

    Returns raw count, heuristically-removed count, and the corrected
    market count — what an analyst would use for APNIC/LACNIC where
    the label-based filter (Fig. 2) cannot help.
    """
    records = ledger.intra_rir(region)
    removed = sum(
        1
        for record in records
        if heuristic.classify(record) is TransferType.MERGER_ACQUISITION
    )
    return {
        "raw": len(records),
        "classified_mna": removed,
        "corrected_market": len(records) - removed,
    }
