"""Statistical helpers: box statistics and rank tests.

The paper's Fig. 1 is box plots; its "no statistically significant
difference in pricing across the regions" claim is a rank test across
the three region samples.  scipy provides the exact tests when
available; a self-contained fallback implements the Kruskal–Wallis
H-test with a chi-square approximation so the library also works
without the optional ``analysis`` extra.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary plus mean and count (a box plot's data)."""

    count: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile on pre-sorted values."""
    if not sorted_values:
        raise ValueError("cannot take quantile of empty data")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    fraction = position - low
    return sorted_values[low] * (1 - fraction) + sorted_values[high] * fraction


def box_stats(values: Sequence[float]) -> BoxStats:
    """Compute box-plot statistics of ``values``."""
    if not values:
        raise ValueError("cannot summarize empty data")
    ordered = sorted(values)
    return BoxStats(
        count=len(ordered),
        minimum=ordered[0],
        q1=_quantile(ordered, 0.25),
        median=_quantile(ordered, 0.5),
        q3=_quantile(ordered, 0.75),
        maximum=ordered[-1],
        mean=sum(ordered) / len(ordered),
    )


def coefficient_of_variation(values: Sequence[float]) -> float:
    """stdev/mean — the consolidation detector's variance measure."""
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return math.sqrt(variance) / mean


def _ranks(values: Sequence[float]) -> List[float]:
    """Midranks (ties averaged)."""
    indexed = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(indexed):
        j = i
        while (
            j + 1 < len(indexed)
            and values[indexed[j + 1]] == values[indexed[i]]
        ):
            j += 1
        midrank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[indexed[k]] = midrank
        i = j + 1
    return ranks


def _chi2_sf(x: float, df: int) -> float:
    """Chi-square survival function via the regularized upper gamma."""
    if x <= 0:
        return 1.0
    return _upper_gamma_regularized(df / 2.0, x / 2.0)


def _upper_gamma_regularized(s: float, x: float) -> float:
    """Q(s, x) by series/continued fraction (Numerical-Recipes style)."""
    if x < s + 1.0:
        # Lower series.
        term = 1.0 / s
        total = term
        k = s
        for _ in range(500):
            k += 1.0
            term *= x / k
            total += term
            if abs(term) < abs(total) * 1e-12:
                break
        lower = total * math.exp(-x + s * math.log(x) - math.lgamma(s))
        return max(0.0, 1.0 - lower)
    # Continued fraction for the upper tail.
    tiny = 1e-300
    b = x + 1.0 - s
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 500):
        an = -i * (i - s)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-12:
            break
    return h * math.exp(-x + s * math.log(x) - math.lgamma(s))


def kruskal_wallis(groups: Sequence[Sequence[float]]) -> Tuple[float, float]:
    """Kruskal–Wallis H-test: returns (H, p-value).

    Uses scipy when importable; otherwise the built-in implementation
    (midranks, tie correction, chi-square approximation).
    """
    groups = [list(g) for g in groups if g]
    if len(groups) < 2:
        raise ValueError("need at least two non-empty groups")
    try:
        from scipy import stats as scipy_stats

        result = scipy_stats.kruskal(*groups)
        return float(result.statistic), float(result.pvalue)
    except ImportError:  # pragma: no cover - exercised without scipy
        pass
    pooled: List[float] = []
    for group in groups:
        pooled.extend(group)
    n = len(pooled)
    ranks = _ranks(pooled)
    h = 0.0
    offset = 0
    for group in groups:
        size = len(group)
        rank_sum = sum(ranks[offset:offset + size])
        h += rank_sum * rank_sum / size
        offset += size
    h = 12.0 / (n * (n + 1)) * h - 3.0 * (n + 1)
    # Tie correction.
    counts: Dict[float, int] = {}
    for value in pooled:
        counts[value] = counts.get(value, 0) + 1
    tie_term = sum(c ** 3 - c for c in counts.values())
    correction = 1.0 - tie_term / float(n ** 3 - n) if n > 1 else 1.0
    if correction > 0:
        h /= correction
    p_value = _chi2_sf(h, len(groups) - 1)
    return h, p_value
