"""Fig. 3: inter-RIR transfers by origin and destination.

§3's observations: the number of inter-RIR transfers continuously
increases, the transferred blocks get smaller, and most transfers move
space away from ARIN toward APNIC or the RIPE NCC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.registry.rir import RIR
from repro.registry.transfers import TransferLedger


@dataclass(frozen=True)
class InterRirYear:
    """One year's inter-RIR aggregate."""

    year: int
    count: int
    addresses: int
    mean_block_length: float


def inter_rir_flows(
    ledger: TransferLedger,
) -> Dict[Tuple[RIR, RIR], int]:
    """(source, destination) → transfer count."""
    flows: Dict[Tuple[RIR, RIR], int] = {}
    for record in ledger.inter_rir():
        key = (record.source_rir, record.recipient_rir)
        flows[key] = flows.get(key, 0) + 1
    return flows


def inter_rir_trend(ledger: TransferLedger) -> List[InterRirYear]:
    """Yearly count and size aggregates, oldest first."""
    by_year: Dict[int, List] = {}
    for record in ledger.inter_rir():
        by_year.setdefault(record.date.year, []).append(record)
    trend: List[InterRirYear] = []
    for year in sorted(by_year):
        records = by_year[year]
        lengths = [r.largest_block_length for r in records]
        trend.append(
            InterRirYear(
                year=year,
                count=len(records),
                addresses=sum(r.addresses for r in records),
                mean_block_length=sum(lengths) / len(lengths),
            )
        )
    return trend


def net_flow_by_rir(ledger: TransferLedger) -> Dict[RIR, int]:
    """Addresses gained minus lost via inter-RIR transfers per RIR.

    ARIN's value should be strongly negative (the dominant source).
    """
    net: Dict[RIR, int] = {}
    for record in ledger.inter_rir():
        net[record.source_rir] = (
            net.get(record.source_rir, 0) - record.addresses
        )
        net[record.recipient_rir] = (
            net.get(record.recipient_rir, 0) + record.addresses
        )
    return net


def counts_increase(trend: List[InterRirYear]) -> bool:
    """Fig. 3 claim: counts grow (first-to-last and on average)."""
    if len(trend) < 2:
        return False
    if trend[-1].count <= trend[0].count:
        return False
    rises = sum(
        1 for a, b in zip(trend, trend[1:]) if b.count >= a.count
    )
    return rises >= (len(trend) - 1) * 0.6


def blocks_shrink(trend: List[InterRirYear]) -> bool:
    """Fig. 3 claim: transferred blocks get smaller over the years."""
    if len(trend) < 2:
        return False
    return trend[-1].mean_block_length > trend[0].mean_block_length