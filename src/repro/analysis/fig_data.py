"""Export figure data series as CSV files, ready for plotting.

The benchmarks assert the *shapes*; this module exports the underlying
series so any plotting tool can redraw the paper's figures from the
reproduction.  One function per figure, each returning the path it
wrote.
"""

from __future__ import annotations

import csv
import datetime
import io
import pathlib
from typing import Union

from repro.analysis.leasing_prices import provider_series
from repro.analysis.prices import quarterly_price_stats
from repro.analysis.transfers import transfer_counts
from repro.delegation.inference import InferenceResult
from repro.delegation.rpki_eval import RuleEvaluation, fail_rate_curves
from repro.market.leasing import ScrapeLog
from repro.market.transactions import TransactionDataset
from repro.obs.metrics import NULL, MetricsRegistry
from repro.registry.rir import RIR
from repro.registry.transfers import TransferLedger

PathLike = Union[str, pathlib.Path]


def _write(
    path: PathLike,
    header,
    rows,
    *,
    metrics: MetricsRegistry = NULL,
    figure: str = "",
) -> str:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(header)
    writer.writerows(rows)
    path.write_text(buffer.getvalue(), encoding="utf-8")
    if figure:
        metrics.inc(f"figures.{figure}.rows", len(rows))
        metrics.inc("figures.files_written")
    return str(path)


def export_fig1_prices(
    dataset: TransactionDataset,
    path: PathLike,
    *,
    metrics: MetricsRegistry = NULL,
) -> str:
    """Quarterly box statistics per size bucket and region."""
    rows = []
    with metrics.span("figures.fig1"):
        for entry in quarterly_price_stats(dataset, by_region=True):
            stats = entry.stats
            rows.append([
                entry.year, entry.quarter, entry.bucket,
                entry.region.value if entry.region else "all",
                stats.count, f"{stats.minimum:.2f}", f"{stats.q1:.2f}",
                f"{stats.median:.2f}", f"{stats.q3:.2f}",
                f"{stats.maximum:.2f}",
            ])
        return _write(
            path,
            ["year", "quarter", "bucket", "region", "n",
             "min", "q1", "median", "q3", "max"],
            rows,
            metrics=metrics, figure="fig1",
        )


def export_fig2_transfers(
    ledger: TransferLedger,
    path: PathLike,
    *,
    metrics: MetricsRegistry = NULL,
) -> str:
    """Per-region market-transfer counts in 3-month bins."""
    rows = []
    with metrics.span("figures.fig2"):
        for rir, series in transfer_counts(ledger).items():
            for bin_start, count in series:
                rows.append([rir.value, bin_start.isoformat(), count])
        rows.sort()
        return _write(path, ["region", "bin_start", "transfers"], rows,
                      metrics=metrics, figure="fig2")


def export_fig4_leasing(
    log: ScrapeLog,
    start: datetime.date,
    end: datetime.date,
    path: PathLike,
    *,
    step_days: int = 7,
    metrics: MetricsRegistry = NULL,
) -> str:
    """Advertised leasing price series per provider."""
    with metrics.span("figures.fig4"):
        records = log.scrape_series(start, end, step_days)
        if not any(record.date == end for record in records):
            records.extend(log.scrape(end))
        rows = []
        for provider, points in sorted(provider_series(records).items()):
            for date, price in points:
                rows.append([provider, date.isoformat(), f"{price:.2f}"])
        return _write(path, ["provider", "date", "price_per_ip_month"],
                      rows, metrics=metrics, figure="fig4")


def export_fig5_rules(
    evaluations: "list[RuleEvaluation]",
    path: PathLike,
    *,
    metrics: MetricsRegistry = NULL,
) -> str:
    """Fail-rate curves: one row per (N, M) point."""
    rows = []
    with metrics.span("figures.fig5"):
        for allowed_missing, series in sorted(
            fail_rate_curves(evaluations).items()
        ):
            for span, rate in series:
                rows.append([allowed_missing, span, f"{rate:.6f}"])
        return _write(
            path, ["N_allowed_missing", "M_span_days", "fail_rate"],
            rows, metrics=metrics, figure="fig5",
        )


def export_fig6_runner_stats(
    results: "dict[str, InferenceResult]",
    path: PathLike,
    *,
    metrics: MetricsRegistry = NULL,
) -> str:
    """Fan-out and cache accounting for the Fig. 6 inference runs.

    One row per named run (``extended`` / ``baseline``), taken from
    the :class:`~repro.delegation.runner.RunnerStats` the parallel
    runner attaches; sequential results (no stats) export zeros so the
    CSV shape is stable.
    """
    rows = []
    for name, result in sorted(results.items()):
        stats = result.runner_stats
        if stats is None:
            rows.append([name, 1, len(result.observation_dates), 0, 0, ""])
            continue
        rows.append([
            name, stats.jobs, stats.days_total, stats.days_from_cache,
            stats.days_computed, f"{stats.elapsed_seconds:.3f}",
        ])
    return _write(
        path,
        ["run", "jobs", "days_total", "days_from_cache",
         "days_computed", "elapsed_seconds"],
        rows,
        metrics=metrics, figure="fig6_runner",
    )


def export_fig6_series(
    extended: InferenceResult,
    baseline: InferenceResult,
    path: PathLike,
    *,
    metrics: MetricsRegistry = NULL,
) -> str:
    """Daily delegation counts and addresses, both algorithms."""
    with metrics.span("figures.fig6"):
        base_counts = dict(baseline.counts_series())
        base_addresses = dict(baseline.addresses_series())
        rows = []
        for (date, count), (_d, addresses) in zip(
            extended.counts_series(), extended.addresses_series()
        ):
            rows.append([
                date.isoformat(), count, addresses,
                base_counts.get(date, ""), base_addresses.get(date, ""),
            ])
        return _write(
            path,
            ["date", "extended_count", "extended_addresses",
             "baseline_count", "baseline_addresses"],
            rows,
            metrics=metrics, figure="fig6",
        )
