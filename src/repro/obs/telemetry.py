"""Quantile-grade telemetry: latency histograms, windows, Prometheus.

The metrics layer (:mod:`repro.obs.metrics`) aggregates timers into
count/total/min/max — enough to catch a stage that doubled, blind to a
p99 that did.  This module adds the distribution dimension while
keeping the property the whole observability stack is built on:
**merge is associative and commutative**, so worker registries fan in
through the runner pool in any completion order and the result equals
one registry that saw every observation sequentially.

- :class:`HistogramStats` — fixed log-scale buckets (factor-2 bounds
  from 1 µs), sparse storage, element-wise merge, and *exact-bucket*
  quantile estimators: a quantile is always reported as the upper
  bound of the bucket holding that rank, never interpolated, so the
  estimate is deterministic, order-independent, and monotone in the
  bucket index.
- :class:`SlidingWindow` — a per-second ring buffer of request
  outcomes behind the serving layer's ``/health`` rollup (qps, error
  rate, p99 over the trailing 1 m / 5 m).
- :func:`to_prometheus` / :func:`write_prometheus` — the standard
  text exposition format over a registry snapshot: counters become
  ``*_total``, timers with distributions become real Prometheus
  histograms (cumulative ``_bucket{le=…}`` plus ``_sum``/``_count``).
- :func:`parse_prometheus_text` — a deliberately strict parser used
  by CI and the tests to validate everything the server exposes: no
  duplicate series, declared types, cumulative bucket counts, and
  ``+Inf`` agreeing with ``_count``.
"""

from __future__ import annotations

import bisect
import math
import pathlib
import re
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import TelemetryError

PathLike = Union[str, pathlib.Path]

#: The bucket scheme is fixed (never configurable per registry): every
#: histogram in every process shares the same bounds, which is what
#: makes merge a plain element-wise add.  Factor-2 bounds from 1 µs
#: cover 1 µs .. ~6.4 days in 40 finite buckets; index 40 is the
#: overflow (``+Inf``) bucket.
HISTOGRAM_BASE_SECONDS = 1e-6
HISTOGRAM_FACTOR = 2.0
HISTOGRAM_FINITE_BUCKETS = 40

#: Upper bounds of the finite buckets; bucket ``i`` holds observations
#: in ``(BUCKET_BOUNDS[i-1], BUCKET_BOUNDS[i]]`` (bucket 0 additionally
#: absorbs everything at or below the base, zero and negative values
#: included).
BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    HISTOGRAM_BASE_SECONDS * HISTOGRAM_FACTOR ** i
    for i in range(HISTOGRAM_FINITE_BUCKETS)
)

#: The quantiles every serialization reports.
QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50_seconds", 0.50),
    ("p90_seconds", 0.90),
    ("p99_seconds", 0.99),
    ("p999_seconds", 0.999),
)


def bucket_index(seconds: float) -> int:
    """The bucket holding one observation (``le`` semantics).

    ``bisect_left`` over the shared bounds returns the first bucket
    whose upper bound is >= the value — exactly Prometheus's
    cumulative ``le`` convention — and the overflow index
    (:data:`HISTOGRAM_FINITE_BUCKETS`) for values beyond the last
    finite bound.
    """
    if seconds <= HISTOGRAM_BASE_SECONDS:
        return 0
    return bisect.bisect_left(BUCKET_BOUNDS, seconds)


def bucket_upper_bound(index: int) -> float:
    """The finite upper bound of bucket ``index``.

    The overflow bucket has no finite bound; quantiles that land in it
    are clamped to the last finite bound so they can be serialized
    (Prometheus exposition still emits a true ``+Inf`` bucket).
    """
    if index >= HISTOGRAM_FINITE_BUCKETS:
        return BUCKET_BOUNDS[-1]
    return BUCKET_BOUNDS[index]


class HistogramStats:
    """A mergeable log-scale latency distribution.

    Sparse bucket storage (index → count) keeps the pickled payload
    proportional to the number of *distinct magnitudes* observed, not
    the observation count; merge adds bucket counts element-wise, so
    it is associative and commutative with the empty histogram as
    identity — the same algebra :class:`~repro.obs.metrics.TimerStats`
    obeys, pinned down by ``tests/obs/test_telemetry_properties.py``.
    """

    __slots__ = ("count", "total_seconds", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total_seconds = 0.0
        self.buckets: Dict[int, int] = {}

    def observe(self, seconds: float) -> None:
        index = bucket_index(seconds)
        self.count += 1
        self.total_seconds += seconds
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def merge(self, other: "HistogramStats") -> "HistogramStats":
        self.count += other.count
        self.total_seconds += other.total_seconds
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count
        return self

    def quantile(self, q: float) -> float:
        """Exact-bucket quantile: the upper bound of the bucket that
        holds the ``ceil(q * count)``-th smallest observation."""
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= rank:
                return bucket_upper_bound(index)
        return bucket_upper_bound(max(self.buckets))

    def cumulative_buckets(self) -> List[Tuple[int, int]]:
        """``(bucket index, cumulative count)`` pairs, ascending."""
        pairs: List[Tuple[int, int]] = []
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            pairs.append((index, cumulative))
        return pairs

    def to_json(self) -> dict:
        payload = {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "buckets": {
                str(index): self.buckets[index]
                for index in sorted(self.buckets)
            },
        }
        for name, q in QUANTILES:
            payload[name] = self.quantile(q)
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "HistogramStats":
        stats = cls()
        stats.count = int(payload.get("count", 0))
        stats.total_seconds = float(payload.get("total_seconds", 0.0))
        stats.buckets = {
            int(index): int(count)
            for index, count in (payload.get("buckets") or {}).items()
        }
        return stats

    def __getstate__(self) -> dict:
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "buckets": self.buckets,
        }

    def __setstate__(self, state: dict) -> None:
        self.count = state["count"]
        self.total_seconds = state["total_seconds"]
        self.buckets = state["buckets"]

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"<HistogramStats n={self.count} "
            f"p99={self.quantile(0.99):.6f}s>"
        )


class SlidingWindow:
    """A per-second ring buffer of request outcomes.

    Each slot aggregates one wall-clock second (count, errors, sparse
    latency buckets); :meth:`snapshot` merges the slots inside a
    trailing window into qps / error-rate / p99.  The ring is bounded
    by ``span_seconds`` slots regardless of traffic, so an always-on
    server pays a fixed few kilobytes for its ``/health`` rollup.
    """

    __slots__ = ("_span", "_slots")

    def __init__(self, span_seconds: int = 300):
        self._span = int(span_seconds)
        #: slot := [second stamp, requests, errors, {bucket: count}]
        self._slots: List[Optional[list]] = [None] * self._span

    @property
    def span_seconds(self) -> int:
        return self._span

    def record(
        self, now: float, seconds: float, *, error: bool = False
    ) -> None:
        stamp = int(now)
        slot = self._slots[stamp % self._span]
        if slot is None or slot[0] != stamp:
            slot = [stamp, 0, 0, {}]
            self._slots[stamp % self._span] = slot
        slot[1] += 1
        if error:
            slot[2] += 1
        index = bucket_index(seconds)
        slot[3][index] = slot[3].get(index, 0) + 1

    def snapshot(self, now: float, window_seconds: int) -> dict:
        """Roll the trailing ``window_seconds`` up into one document."""
        window = min(int(window_seconds), self._span)
        floor = int(now) - window
        requests = errors = 0
        merged = HistogramStats()
        for slot in self._slots:
            if slot is None or not floor < slot[0] <= int(now):
                continue
            requests += slot[1]
            errors += slot[2]
            for index, count in slot[3].items():
                merged.buckets[index] = (
                    merged.buckets.get(index, 0) + count
                )
        merged.count = requests
        return {
            "windowSeconds": window,
            "requests": requests,
            "qps": round(requests / window, 3) if window else 0.0,
            "errors": errors,
            "errorRate": round(errors / requests, 6) if requests else 0.0,
            "p99Seconds": round(merged.quantile(0.99), 9),
        }


# -- Prometheus text exposition -------------------------------------------


_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)


def mangle_metric_name(name: str, suffix: str = "") -> str:
    """One dotted repro metric name → one Prometheus metric name.

    Rules (documented in DESIGN §5.7): every character outside
    ``[a-zA-Z0-9_:]`` becomes ``_`` (dots included), the result is
    prefixed ``repro_`` (which also guarantees a legal leading
    character), and the unit/kind suffix (``_total``, ``_seconds``) is
    appended last.
    """
    return "repro_" + _METRIC_CHARS.sub("_", name) + suffix


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    return "+Inf" if bound == math.inf else f"{bound:.12g}"


def to_prometheus(snapshot: dict) -> str:
    """Render one registry snapshot (``MetricsRegistry.to_json()``)
    as Prometheus text exposition format 0.0.4.

    - counters → ``repro_<name>_total`` (counter),
    - gauges → ``repro_<name>`` (gauge),
    - timers with a recorded distribution → ``repro_<name>_seconds``
      (histogram): one cumulative ``_bucket`` line per *occupied*
      bucket (a legal subset of the full bound list) plus ``+Inf``,
      ``_sum`` and ``_count``,
    - timers without a distribution (old manifests) →
      ``repro_<name>_seconds`` (summary) with ``_sum``/``_count``.

    Name mangling can collide (``a.b`` and ``a_b``); colliding
    counters are summed and colliding gauges keep the maximum, so the
    output never contains duplicate series.
    """
    lines: List[str] = []
    counters: Dict[str, float] = {}
    for name, value in (snapshot.get("counters") or {}).items():
        mangled = mangle_metric_name(name, "_total")
        counters[mangled] = counters.get(mangled, 0) + value
    for mangled in sorted(counters):
        lines.append(f"# TYPE {mangled} counter")
        lines.append(f"{mangled} {_format_value(counters[mangled])}")
    gauges: Dict[str, float] = {}
    for name, value in (snapshot.get("gauges") or {}).items():
        mangled = mangle_metric_name(name)
        current = gauges.get(mangled)
        if current is None or value > current:
            gauges[mangled] = value
    for mangled in sorted(gauges):
        lines.append(f"# TYPE {mangled} gauge")
        lines.append(f"{mangled} {_format_value(gauges[mangled])}")
    timers = snapshot.get("timers") or {}
    histograms = snapshot.get("histograms") or {}
    for name in sorted(set(timers) | set(histograms)):
        mangled = mangle_metric_name(name, "_seconds")
        histogram = histograms.get(name)
        if histogram:
            stats = HistogramStats.from_json(histogram)
            lines.append(f"# TYPE {mangled} histogram")
            for index, cumulative in stats.cumulative_buckets():
                if index >= HISTOGRAM_FINITE_BUCKETS:
                    continue  # the +Inf line below carries overflow
                bound = _format_bound(bucket_upper_bound(index))
                lines.append(
                    f'{mangled}_bucket{{le="{bound}"}} {cumulative}'
                )
            lines.append(
                f'{mangled}_bucket{{le="+Inf"}} {stats.count}'
            )
            lines.append(
                f"{mangled}_sum {_format_value(stats.total_seconds)}"
            )
            lines.append(f"{mangled}_count {stats.count}")
            continue
        stats_json = timers.get(name) or {}
        lines.append(f"# TYPE {mangled} summary")
        lines.append(
            f"{mangled}_sum "
            f"{_format_value(stats_json.get('total_seconds', 0.0))}"
        )
        lines.append(f"{mangled}_count {stats_json.get('count', 0)}")
    return "\n".join(lines) + "\n"


def write_prometheus(registry, path: PathLike) -> str:
    """Write a registry's snapshot as a Prometheus text file
    (the ``--prom-out`` artifact); returns the path written."""
    path = pathlib.Path(path)
    if path.parent != pathlib.Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_prometheus(registry.to_json()), encoding="utf-8")
    return str(path)


def _parse_labels(text: Optional[str]) -> Tuple[Tuple[str, str], ...]:
    if not text:
        return ()
    labels = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, value = part.partition("=")
        if not sep or not value.startswith('"') or not value.endswith('"'):
            raise TelemetryError(f"malformed label pair: {part!r}")
        labels.append((name.strip(), value[1:-1]))
    return tuple(labels)


def _family_of(name: str, declared: Dict[str, str]) -> Optional[str]:
    """The declared family a sample belongs to, suffixes stripped."""
    if name in declared:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in declared:
            return name[: -len(suffix)]
    return None


def parse_prometheus_text(text: str) -> Dict[str, dict]:
    """Parse + validate Prometheus text exposition, strictly.

    Returns ``{family: {"type": ..., "samples": {(name, labels):
    value}}}``.  Raises :class:`~repro.errors.TelemetryError` on any
    of: an unparseable line, a sample without a declared ``# TYPE``,
    a duplicate series, a duplicate type declaration, histogram bucket
    counts that are not cumulative in ``le`` order, a histogram
    missing its ``+Inf`` bucket or ``_sum``/``_count`` series, or a
    ``+Inf`` bucket disagreeing with ``_count``.
    """
    declared: Dict[str, str] = {}
    families: Dict[str, dict] = {}
    seen: set = set()
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    raise TelemetryError(
                        f"line {number}: malformed TYPE comment: {raw!r}"
                    )
                _hash, _type, family, kind = parts
                if kind not in ("counter", "gauge", "histogram",
                                "summary", "untyped"):
                    raise TelemetryError(
                        f"line {number}: unknown metric type {kind!r}"
                    )
                if family in declared:
                    raise TelemetryError(
                        f"line {number}: duplicate TYPE for {family}"
                    )
                declared[family] = kind
                families[family] = {"type": kind, "samples": {}}
            continue  # HELP and other comments pass through
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise TelemetryError(
                f"line {number}: unparseable sample: {raw!r}"
            )
        name = match.group("name")
        labels = _parse_labels(match.group("labels"))
        raw_value = match.group("value")
        try:
            value = (
                math.inf if raw_value == "+Inf"
                else -math.inf if raw_value == "-Inf"
                else float(raw_value)
            )
        except ValueError:
            raise TelemetryError(
                f"line {number}: bad sample value {raw_value!r}"
            )
        family = _family_of(name, declared)
        if family is None:
            raise TelemetryError(
                f"line {number}: sample {name!r} has no # TYPE declaration"
            )
        series = (name, labels)
        if series in seen:
            raise TelemetryError(
                f"line {number}: duplicate series {name}"
                f"{dict(labels) if labels else ''}"
            )
        seen.add(series)
        families[family]["samples"][series] = value
    for family, data in families.items():
        if data["type"] == "histogram":
            _validate_histogram_family(family, data["samples"])
    return families


def _validate_histogram_family(
    family: str, samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]
) -> None:
    buckets: List[Tuple[float, float]] = []
    count = total = None
    for (name, labels), value in samples.items():
        if name == f"{family}_bucket":
            bounds = dict(labels)
            if "le" not in bounds:
                raise TelemetryError(
                    f"{family}: bucket sample without an le label"
                )
            le = (
                math.inf if bounds["le"] == "+Inf"
                else float(bounds["le"])
            )
            buckets.append((le, value))
        elif name == f"{family}_count":
            count = value
        elif name == f"{family}_sum":
            total = value
    if count is None or total is None:
        raise TelemetryError(
            f"{family}: histogram missing _sum or _count"
        )
    if not buckets:
        raise TelemetryError(f"{family}: histogram has no buckets")
    buckets.sort(key=lambda pair: pair[0])
    if buckets[-1][0] != math.inf:
        raise TelemetryError(f"{family}: histogram missing +Inf bucket")
    previous = 0.0
    for le, cumulative in buckets:
        if cumulative < previous:
            raise TelemetryError(
                f"{family}: bucket counts not cumulative at "
                f"le={_format_bound(le)} ({cumulative} < {previous:g})"
            )
        previous = cumulative
    if buckets[-1][1] != count:
        raise TelemetryError(
            f"{family}: +Inf bucket ({buckets[-1][1]:g}) disagrees "
            f"with _count ({count:g})"
        )
    if count > 0 and total < 0:
        raise TelemetryError(f"{family}: negative _sum with samples")
