"""Zero-dependency metrics: counters, gauges, timers, stage spans.

The measurement pipeline fans out across processes (see
:mod:`repro.delegation.runner`), so the central type here — the
:class:`MetricsRegistry` — is **picklable** and **mergeable**: every
worker records into its own registry, ships it back with its results,
and the parent folds them together with :meth:`MetricsRegistry.merge`.

Merging is associative and commutative (counters and timer statistics
add, gauges keep the maximum), so the merged view is independent of
worker scheduling: merging N worker registries in any order equals one
registry that saw every observation sequentially.  The property tests
in ``tests/obs/test_metrics_properties.py`` pin this down.

Instrumented code paths default to the module-level :data:`NULL`
registry, whose methods do nothing: a run that never asks for metrics
pays (almost) nothing and produces byte-identical output.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.obs.telemetry import HistogramStats


@dataclass
class TimerStats:
    """Aggregated observations of one named timer."""

    count: int = 0
    total_seconds: float = 0.0
    min_seconds: float = float("inf")
    max_seconds: float = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        if seconds < self.min_seconds:
            self.min_seconds = seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def merge(self, other: "TimerStats") -> None:
        # Normalize empty timers here instead of at serialization time:
        # a count == 0 side carries the ``min_seconds = inf`` sentinel,
        # which must never survive into a merged timer (it would leak
        # into JSON as the non-standard ``Infinity`` token).
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.total_seconds = other.total_seconds
            self.min_seconds = other.min_seconds
            self.max_seconds = other.max_seconds
            return
        self.count += other.count
        self.total_seconds += other.total_seconds
        self.min_seconds = min(self.min_seconds, other.min_seconds)
        self.max_seconds = max(self.max_seconds, other.max_seconds)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def to_json(self) -> dict:
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "min_seconds": (
                self.min_seconds if self.count else 0.0
            ),
            "max_seconds": self.max_seconds,
        }


class Span:
    """A wall-clock stage timing, nestable via the owning registry.

    Entering pushes the span's name onto the registry's stack, so a
    span opened inside another records under the dotted path of its
    ancestors (``runner.compute`` inside ``runner``).  Exiting records
    one observation into the registry's timer of that full name.
    """

    __slots__ = ("_registry", "_name", "_full_name", "_started")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self._name = name
        self._full_name = name
        self._started = 0.0

    def __enter__(self) -> "Span":
        registry = self._registry
        stack = registry._span_stack
        self._full_name = (
            f"{stack[-1]}.{self._name}" if stack else self._name
        )
        stack.append(self._full_name)
        if registry._mem_profiler is not None:
            registry._mem_profiler.enter_span()
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        elapsed = time.perf_counter() - self._started
        registry = self._registry
        stack = registry._span_stack
        if stack and stack[-1] == self._full_name:
            stack.pop()
        else:
            # Corrupted nesting (an overlapping or re-entered span):
            # skipping the pop keeps the stack from losing an
            # ancestor, but must never be silent — manifests and
            # `history check` gate on this counter.
            registry.inc("spans.mismatched")
        registry.observe(self._full_name, elapsed)
        if exc_type is not None:
            # The timing above still records (a degraded stage took
            # real wall-clock), but a crashed stage must be
            # distinguishable from a successful one in manifests.
            registry.inc(f"{self._full_name}.failed")
        if registry._mem_profiler is not None:
            peak_bytes = registry._mem_profiler.exit_span()
            registry.set_gauge(
                f"profile.{self._full_name}.peak_kb",
                peak_bytes / 1024.0,
            )


class _NullSpan:
    """Reusable do-nothing span for the :class:`NullRegistry`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class MetricsRegistry:
    """Counters, gauges, and timers under dotted string names.

    Plain-dict state keeps the registry picklable; the span stack is
    process-local bookkeeping and is dropped on pickling (a registry
    should never cross processes with spans still open).
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._timers: Dict[str, TimerStats] = {}
        self._histograms: Dict[str, HistogramStats] = {}
        self._span_stack: List[str] = []
        #: Set by :meth:`enable_memory_profile`; spans then record
        #: ``profile.<name>.peak_kb`` gauges on exit.
        self._mem_profiler = None

    # -- recording ------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Record a point-in-time level; merges keep the maximum."""
        current = self._gauges.get(name)
        if current is None or value > current:
            self._gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        """Record one timing observation into timer ``name``.

        Every observation also lands in the same-named latency
        histogram (fixed log-scale buckets, see
        :mod:`repro.obs.telemetry`), so any instrumented call site —
        spans included — gets p50/p90/p99/p999 for free.
        """
        stats = self._timers.get(name)
        if stats is None:
            stats = self._timers[name] = TimerStats()
        stats.observe(seconds)
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = HistogramStats()
        histogram.observe(seconds)

    def span(self, name: str) -> Span:
        """Context manager timing a pipeline stage; spans nest."""
        return Span(self, name)

    def enable_memory_profile(self) -> None:
        """Record per-span peak-memory gauges (``profile.*.peak_kb``).

        Starts :mod:`tracemalloc` in this process if needed; every
        span closed afterwards records the peak traced allocation
        observed during its lifetime.  Gauges merge by maximum, so the
        fan-in of worker registries reports the worst per-stage peak
        across the pool.
        """
        from repro.obs.profile import MemoryProfiler

        if self._mem_profiler is None:
            self._mem_profiler = MemoryProfiler()
            self._mem_profiler.start()

    @property
    def memory_profiling(self) -> bool:
        return self._mem_profiler is not None

    # -- reading --------------------------------------------------------

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> Optional[float]:
        return self._gauges.get(name)

    def timer(self, name: str) -> TimerStats:
        return self._timers.get(name, TimerStats())

    def histogram(self, name: str) -> HistogramStats:
        return self._histograms.get(name, HistogramStats())

    def counters(self) -> Dict[str, int]:
        return dict(self._counters)

    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    def timers(self) -> Dict[str, TimerStats]:
        return dict(self._timers)

    def histograms(self) -> Dict[str, HistogramStats]:
        return dict(self._histograms)

    def names(self) -> Iterator[str]:
        yield from sorted(
            set(self._counters) | set(self._gauges) | set(self._timers)
        )

    # -- merging / serialization ---------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry; returns ``self``.

        Counters add, gauges keep the maximum, timer statistics
        combine, so merging is associative and commutative with the
        empty registry as identity.
        """
        for name, value in other._counters.items():
            self._counters[name] = self._counters.get(name, 0) + value
        for name, value in other._gauges.items():
            self.set_gauge(name, value)
        for name, stats in other._timers.items():
            mine = self._timers.get(name)
            if mine is None:
                mine = self._timers[name] = TimerStats()
            mine.merge(stats)
        for name, histogram in other._histograms.items():
            mine_h = self._histograms.get(name)
            if mine_h is None:
                mine_h = self._histograms[name] = HistogramStats()
            mine_h.merge(histogram)
        return self

    def to_json(self) -> dict:
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "timers": {
                name: stats.to_json()
                for name, stats in sorted(self._timers.items())
            },
            "histograms": {
                name: histogram.to_json()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def __getstate__(self) -> dict:
        return {
            "counters": self._counters,
            "gauges": self._gauges,
            "timers": self._timers,
            "histograms": self._histograms,
        }

    def __setstate__(self, state: dict) -> None:
        self._counters = state["counters"]
        self._gauges = state["gauges"]
        self._timers = state["timers"]
        # Registries pickled by pre-histogram versions load empty.
        self._histograms = state.get("histograms", {})
        self._span_stack = []
        # Profiling is process-local (it wraps this interpreter's
        # tracemalloc); a shipped registry keeps its gauges only.
        self._mem_profiler = None

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry {len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._timers)} timers>"
        )


class NullRegistry(MetricsRegistry):
    """A registry that records nothing.

    Every instrumented code path defaults to :data:`NULL`, so the
    uninstrumented pipeline's only cost is a method call that returns
    immediately — no dict writes, no timing syscalls.
    """

    enabled = False

    def inc(self, name: str, amount: int = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, seconds: float) -> None:
        pass

    def span(self, name: str) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def enable_memory_profile(self) -> None:
        # Never start tracemalloc on behalf of an uninstrumented run.
        pass

    def merge(self, other: MetricsRegistry) -> "NullRegistry":
        return self

    def __repr__(self) -> str:
        return "<NullRegistry>"


#: Shared no-op registry; the default everywhere instrumentation hooks in.
NULL = NullRegistry()
