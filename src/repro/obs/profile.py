"""Per-stage peak-memory profiling on top of :mod:`tracemalloc`.

The per-day inference path materializes whole routing tables, so a
memory regression ("which day blew up memory") is as real a failure as
a slow stage — and invisible to wall-clock timers.  This module turns
Python's built-in allocation tracer into *per-span peak gauges*:

- :class:`MemoryProfiler` owns the process's ``tracemalloc`` peak
  bookkeeping and exposes ``enter_span`` / ``exit_span`` hooks that
  :class:`~repro.obs.metrics.Span` calls when a registry has
  :meth:`~repro.obs.metrics.MetricsRegistry.enable_memory_profile`\\ d;
- each closed span records a ``profile.<span name>.peak_kb`` gauge:
  the peak traced allocation observed during that span's lifetime,
  *including* its children (a parent can never report a smaller peak
  than a child that ran inside it);
- gauges merge by maximum, so worker registries fanned back through
  the :mod:`repro.delegation.runner` pool report the worst per-stage
  peak seen by any worker.

``tracemalloc`` only sees Python allocations (it is "peak-RSS-style",
not RSS itself), but that is exactly the part of the footprint the
pipeline's own data structures control — and it needs no dependencies
and no ``/proc`` scraping.

Profiling is strictly opt-in: an un-enabled registry never imports
this module, never starts ``tracemalloc``, and pays nothing.
"""

from __future__ import annotations

import tracemalloc
from typing import List


class MemoryProfiler:
    """Nesting-aware peak tracking over ``tracemalloc``'s single peak.

    ``tracemalloc`` keeps one global high-water mark, so nested spans
    cannot simply read it: resetting the peak for an inner span would
    erase the outer span's history.  The profiler therefore keeps a
    stack of per-span maxima and *folds* each completed interval's
    peak into its parent frame:

    - entering a span folds the global peak-so-far into the parent
      frame, resets the global peak, and pushes a fresh frame;
    - exiting a span takes ``max(frame, global peak)`` as the span's
      peak, folds that into the new top frame, and resets again.

    The invariant: a span's reported peak equals the maximum traced
    allocation at any instant between its enter and its exit.
    """

    def __init__(self) -> None:
        self._stack: List[int] = []
        self._started_tracing = False

    def start(self) -> None:
        """Begin tracing allocations (idempotent, process-wide)."""
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracing = True

    def stop(self) -> None:
        """Stop tracing if this profiler was the one that started it."""
        if self._started_tracing and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._started_tracing = False

    def enter_span(self) -> None:
        _current, peak = tracemalloc.get_traced_memory()
        if self._stack:
            if peak > self._stack[-1]:
                self._stack[-1] = peak
        tracemalloc.reset_peak()
        self._stack.append(0)

    def exit_span(self) -> int:
        """Close the innermost span; returns its peak in bytes."""
        _current, peak = tracemalloc.get_traced_memory()
        frame = self._stack.pop() if self._stack else 0
        if frame > peak:
            peak = frame
        if self._stack and peak > self._stack[-1]:
            self._stack[-1] = peak
        tracemalloc.reset_peak()
        return peak
