"""Run manifests: one JSON artifact auditing a pipeline run.

A manifest records what a run *was* (command, configuration hash,
input fingerprints) and what it *did* (per-stage record-in/record-out
attrition, cache hits and misses, wall-clock timings, every metric the
run's :class:`~repro.obs.metrics.MetricsRegistry` accumulated).  The
stage table is the measurement-paper view: each filter of the §4
delegation pipeline appears with the records it received, the records
it passed on, and why the difference was dropped — the same per-stage
accounting careful reproductions report alongside their figures.

The attrition numbers come from the pipeline's deterministic
counters, so a parallel run and a sequential run of the same window
produce identical stage tables (only the timings differ).
"""

from __future__ import annotations

import datetime
import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.errors import DatasetError
from repro.obs.metrics import MetricsRegistry

PathLike = Union[str, pathlib.Path]

#: Bump when the manifest layout changes incompatibly.
MANIFEST_SCHEMA = 1


def config_hash(config: object) -> str:
    """Stable hash of a (frozen-dataclass) configuration.

    ``repr`` of a frozen dataclass is deterministic across processes
    and runs — the same property the runner's cache key relies on.
    """
    return hashlib.sha256(repr(config).encode("utf-8")).hexdigest()


@dataclass
class StageRecord:
    """One pipeline stage's attrition: what came in, what survived."""

    name: str
    records_in: int
    records_out: int
    dropped: Dict[str, int] = field(default_factory=dict)
    seconds: Optional[float] = None

    def to_json(self) -> dict:
        payload = {
            "name": self.name,
            "records_in": self.records_in,
            "records_out": self.records_out,
            "dropped": dict(sorted(self.dropped.items())),
        }
        if self.seconds is not None:
            payload["seconds"] = self.seconds
        return payload


@dataclass
class RunManifest:
    """Everything needed to audit (and re-identify) one pipeline run."""

    command: str
    config: Optional[dict] = None
    config_digest: Optional[str] = None
    inputs: Dict[str, str] = field(default_factory=dict)
    stages: List[StageRecord] = field(default_factory=list)
    cache: Dict[str, int] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)
    metrics: Optional[MetricsRegistry] = None
    created: Optional[str] = None
    #: Quarantine accounting for degraded-mode runs (None = strict run
    #: or nothing quarantined); see ``RunManifest.attach_degradation``.
    degradation: Optional[dict] = None

    def add_stage(
        self,
        name: str,
        records_in: int,
        records_out: int,
        dropped: Optional[Dict[str, int]] = None,
        seconds: Optional[float] = None,
    ) -> StageRecord:
        stage = StageRecord(
            name=name,
            records_in=records_in,
            records_out=records_out,
            dropped=dict(dropped or {}),
            seconds=seconds,
        )
        self.stages.append(stage)
        return stage

    def add_input(self, name: str, fingerprint: str) -> None:
        self.inputs[name] = fingerprint

    def attach_degradation(self, report) -> None:
        """Record a quarantine report's accounting in the manifest.

        ``report`` is a
        :class:`~repro.ingest.quarantine.QuarantineReport` (duck-typed
        to avoid an obs → ingest dependency); an empty report attaches
        as ``None`` so pristine runs are distinguishable at a glance.
        """
        self.degradation = report.to_json() if len(report) else None

    def to_json(self) -> dict:
        return {
            "schema": MANIFEST_SCHEMA,
            "command": self.command,
            "created": (
                self.created
                or datetime.datetime.now(
                    datetime.timezone.utc
                ).isoformat(timespec="seconds")
            ),
            "config": self.config,
            "config_hash": self.config_digest,
            "inputs": dict(sorted(self.inputs.items())),
            "stages": [stage.to_json() for stage in self.stages],
            "cache": dict(sorted(self.cache.items())),
            "degradation": self.degradation,
            "extra": self.extra,
            "metrics": (
                self.metrics.to_json()
                if self.metrics is not None
                else None
            ),
        }

    def write(self, path: PathLike) -> str:
        """Write the manifest as one pretty-printed JSON file."""
        path = pathlib.Path(path)
        if path.parent != pathlib.Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(self.to_json(), indent=2, sort_keys=False)
        path.write_text(text + "\n", encoding="utf-8")
        return str(path)


def load_manifest(path: PathLike) -> dict:
    """Read a manifest JSON, validating the envelope.

    Returns the raw dict (the pretty-printer and tests work on the
    serialized form; the dataclasses above are for *writing*).
    """
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise DatasetError(f"no manifest at {path}")
    except (OSError, json.JSONDecodeError) as exc:
        raise DatasetError(f"unreadable manifest {path}: {exc}") from exc
    if not isinstance(payload, dict) or "schema" not in payload:
        raise DatasetError(f"{path} is not a run manifest")
    if payload["schema"] != MANIFEST_SCHEMA:
        raise DatasetError(
            f"unsupported manifest schema {payload['schema']!r} "
            f"(expected {MANIFEST_SCHEMA})"
        )
    return payload


def render_manifest(payload: dict) -> str:
    """Human-readable view of a loaded manifest (``repro manifest``)."""
    from repro.analysis.report import render_table

    lines: List[str] = []
    lines.append(f"run manifest: {payload.get('command', '?')}")
    lines.append(f"created: {payload.get('created', '?')}")
    digest = payload.get("config_hash")
    if digest:
        lines.append(f"config hash: {digest[:16]}…")
    inputs = payload.get("inputs") or {}
    for name, fingerprint in sorted(inputs.items()):
        lines.append(f"input {name}: {fingerprint[:16]}…")
    cache = payload.get("cache") or {}
    if cache:
        hits = cache.get("hits", 0)
        misses = cache.get("misses", 0)
        total = hits + misses
        rate = f" ({hits / total:.0%} hit rate)" if total else ""
        lines.append(f"cache: {hits} hits, {misses} misses{rate}")
    stages = payload.get("stages") or []
    if stages:
        rows = []
        for stage in stages:
            records_in = stage.get("records_in", 0)
            records_out = stage.get("records_out", 0)
            dropped = stage.get("dropped") or {}
            dropped_text = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(dropped.items())
            )
            seconds = stage.get("seconds")
            rows.append([
                stage.get("name", "?"),
                records_in,
                records_out,
                dropped_text or "-",
                f"{seconds:.3f}" if seconds is not None else "-",
            ])
        lines.append("")
        lines.append(render_table(
            ["stage", "in", "out", "dropped", "seconds"],
            rows,
            title="per-stage attrition",
        ))
    degradation = payload.get("degradation")
    if degradation:
        total = degradation.get("quarantined_total", 0)
        lines.append("")
        lines.append(f"DEGRADED RUN: {total} records quarantined")
        by_source = degradation.get("by_source") or {}
        if by_source:
            lines.append(render_table(
                ["source", "quarantined"],
                sorted(by_source.items()),
                title="quarantine by source",
            ))
    metrics = payload.get("metrics") or {}
    timers = metrics.get("timers") or {}
    histograms = metrics.get("histograms") or {}
    if timers:
        rows = []
        for name, stats in sorted(timers.items()):
            histogram = histograms.get(name) or {}
            p99 = histogram.get("p99_seconds")
            rows.append([
                name,
                stats.get("count", 0),
                f"{stats.get('total_seconds', 0.0):.3f}",
                f"{stats.get('mean_seconds', _mean(stats)):.4f}",
                f"{p99:.4f}" if p99 is not None else "-",
            ])
        lines.append("")
        lines.append(render_table(
            ["timer", "count", "total_s", "mean_s", "p99_s"],
            rows,
            title="timers",
        ))
    counters = metrics.get("counters") or {}
    if counters:
        lines.append("")
        lines.append(render_table(
            ["counter", "value"],
            sorted(counters.items()),
            title="counters",
        ))
    gauges = metrics.get("gauges") or {}
    if gauges:
        lines.append("")
        lines.append(render_table(
            ["gauge", "value"],
            [[name, f"{value:g}"] for name, value in sorted(gauges.items())],
            title="gauges",
        ))
    return "\n".join(lines)


def _mean(stats: dict) -> float:
    count = stats.get("count", 0)
    total = stats.get("total_seconds", 0.0)
    return total / count if count else 0.0
