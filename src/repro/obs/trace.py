"""Timeline tracing: per-span events, Chrome trace export, summaries.

Aggregated timers (``repro.obs.metrics``) answer *how long did stage X
take in total*; they cannot answer *which worker sat idle while lane 3
chewed on one pathological day*.  This module records the missing
dimension — every span as an event with a wall-clock start, a
duration, the recording process's pid, and a **lane** (a stable label
for the worker: ``main`` for the parent, ``worker-<pid>`` in the
pool):

- :class:`TraceBuffer` — a picklable, mergeable event list.  Workers
  record into their own buffer and the parent folds them together at
  fan-in, exactly like :meth:`MetricsRegistry.merge` (merging is a
  multiset union: grouping and completion order never change the
  merged trace's canonical form);
- :class:`TracingRegistry` — a :class:`MetricsRegistry` whose spans
  additionally append trace events, so every already-instrumented
  call site gains timeline tracing with zero changes;
- :func:`write_trace` / Chrome **trace-event JSON** export — the
  ``--trace-out`` artifact loads directly into Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``;
- :func:`summarize_trace` — a terminal view: wall-clock, per-lane
  utilization, an approximate critical path, and the top-K slowest
  spans, for when a browser is three SSH hops away.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import DatasetError
from repro.obs.metrics import MetricsRegistry, Span

PathLike = Union[str, pathlib.Path]

#: Bump when the exported trace layout changes incompatibly.
TRACE_SCHEMA = 1


@dataclass(frozen=True)
class TraceEvent:
    """One completed span: wall-clock start, duration, origin."""

    name: str
    start: float      # epoch seconds (time.time at span entry)
    duration: float   # seconds (perf_counter delta)
    pid: int
    lane: str
    failed: bool = False

    @property
    def end(self) -> float:
        return self.start + self.duration


class TraceBuffer:
    """A picklable, append-only buffer of :class:`TraceEvent`\\ s.

    Like the metrics registry, the buffer is built to cross process
    boundaries: workers fill their own and :meth:`merge` folds them
    into the parent's.  Merge is a multiset union — associative and
    commutative with the empty buffer as identity — so the canonical
    (sorted) event list is independent of pool completion order.
    """

    def __init__(self, lane: str = "main"):
        self.lane = lane
        self._events: List[TraceEvent] = []

    def add(
        self,
        name: str,
        start: float,
        duration: float,
        *,
        failed: bool = False,
    ) -> None:
        """Append one completed span recorded by *this* process."""
        self._events.append(TraceEvent(
            name=name,
            start=start,
            duration=duration,
            pid=os.getpid(),
            lane=self.lane,
            failed=failed,
        ))

    def merge(self, other: "TraceBuffer") -> "TraceBuffer":
        """Fold ``other``'s events into this buffer; returns ``self``."""
        self._events.extend(other._events)
        return self

    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def lanes(self) -> List[str]:
        return sorted({event.lane for event in self._events})

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return (
            f"<TraceBuffer lane={self.lane!r} {len(self._events)} events "
            f"in {len(self.lanes())} lanes>"
        )

    # -- export ---------------------------------------------------------

    def to_chrome_json(self) -> dict:
        """The buffer as a Chrome trace-event JSON object.

        Complete (``ph: "X"``) events with microsecond timestamps
        relative to the earliest span, one tid per lane, plus the
        ``thread_name`` metadata that makes Perfetto label the lanes.
        The sort key is total over an event's identity, so two merges
        of the same shards export byte-identical JSON regardless of
        the order the pool delivered them in.
        """
        events = sorted(
            self._events,
            key=lambda e: (
                e.start, e.lane, e.name, e.duration, e.failed, e.pid
            ),
        )
        base = events[0].start if events else 0.0
        tids = {lane: tid for tid, lane in enumerate(
            sorted({e.lane for e in events}), start=1
        )}
        pids = sorted({e.pid for e in events})
        trace_events: List[dict] = []
        for pid in pids:
            trace_events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": "repro"},
            })
        seen_threads = set()
        for event in events:
            key = (event.pid, tids[event.lane])
            if key not in seen_threads:
                seen_threads.add(key)
                trace_events.append({
                    "ph": "M", "name": "thread_name",
                    "pid": event.pid, "tid": tids[event.lane],
                    "args": {"name": event.lane},
                })
        for event in events:
            payload = {
                "name": event.name,
                "cat": "span",
                "ph": "X",
                "ts": round((event.start - base) * 1e6, 3),
                "dur": round(event.duration * 1e6, 3),
                "pid": event.pid,
                "tid": tids[event.lane],
                "args": {"lane": event.lane},
            }
            if event.failed:
                payload["args"]["failed"] = True
            trace_events.append(payload)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "metadata": {
                "schema": TRACE_SCHEMA,
                "trace_start_epoch": base,
                "lanes": sorted(tids),
            },
        }

    def write(self, path: PathLike) -> str:
        """Write the Chrome trace JSON artifact (``--trace-out``)."""
        path = pathlib.Path(path)
        if path.parent != pathlib.Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(self.to_chrome_json(), indent=1)
        path.write_text(text + "\n", encoding="utf-8")
        return str(path)


class TraceSpan(Span):
    """A :class:`Span` that also appends a trace event on exit."""

    __slots__ = ("_wall_started",)

    def __enter__(self) -> "TraceSpan":
        self._wall_started = time.time()
        super().__enter__()
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        duration = time.perf_counter() - self._started
        super().__exit__(exc_type, exc_val, exc_tb)
        self._registry.trace.add(
            self._full_name,
            self._wall_started,
            duration,
            failed=exc_type is not None,
        )


class TracingRegistry(MetricsRegistry):
    """A metrics registry whose spans also record timeline events.

    Everything else — counters, gauges, timers, memory profiling —
    behaves exactly like the base class, so instrumented code needs no
    changes: hand a ``TracingRegistry`` to any ``metrics=`` parameter
    and every stage span lands on the timeline.  :meth:`merge` folds
    the other registry's trace buffer in when it has one, mirroring
    the metric fan-in from pool workers.
    """

    def __init__(self, lane: str = "main"):
        super().__init__()
        self.trace = TraceBuffer(lane=lane)

    def span(self, name: str) -> TraceSpan:  # type: ignore[override]
        return TraceSpan(self, name)

    def merge(self, other: MetricsRegistry) -> "TracingRegistry":
        super().merge(other)
        other_trace = getattr(other, "trace", None)
        if other_trace is not None:
            self.trace.merge(other_trace)
        return self

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state["trace"] = self.trace
        return state

    def __setstate__(self, state: dict) -> None:
        trace = state.pop("trace", None)
        super().__setstate__(state)
        self.trace = trace if trace is not None else TraceBuffer()

    def __repr__(self) -> str:
        return (
            f"<TracingRegistry lane={self.trace.lane!r} "
            f"{len(self.trace)} events>"
        )


# -- loading and summarizing ----------------------------------------------


def load_trace(path: PathLike) -> dict:
    """Read a ``--trace-out`` artifact, validating the envelope."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise DatasetError(f"no trace file at {path}")
    except (OSError, json.JSONDecodeError) as exc:
        raise DatasetError(f"unreadable trace {path}: {exc}") from exc
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise DatasetError(f"{path} is not a Chrome trace-event file")
    return payload


def _complete_events(payload: dict) -> List[dict]:
    return [
        event for event in payload.get("traceEvents", [])
        if event.get("ph") == "X"
    ]


def _event_lane(event: dict) -> str:
    args = event.get("args") or {}
    return str(args.get("lane", f"tid-{event.get('tid', '?')}"))


def _union_seconds(intervals: Sequence[Tuple[float, float]]) -> float:
    """Total covered length of possibly-overlapping (start, end)s.

    Spans nest (``runner.compute`` contains every ``...day``), so a
    plain duration sum would double-count; utilization needs the
    union.
    """
    total = 0.0
    last_end = float("-inf")
    for start, end in sorted(intervals):
        if end <= last_end:
            continue
        total += end - max(start, last_end)
        last_end = end
    return total


def _critical_path(events: List[dict]) -> List[dict]:
    """Approximate critical path: a backward chain of span ends.

    Start from the span that finishes last; repeatedly jump to the
    span with the latest end at or before the current span's start
    (any lane).  The result is a chain of back-to-back spans whose
    combined extent explains the run's wall-clock — the lanes to
    speed up first.  It is an approximation (no explicit dependency
    edges exist in a trace), but for fork-join pipelines it finds the
    straggler chain.
    """
    if not events:
        return []
    by_end = sorted(
        events, key=lambda e: e["ts"] + e["dur"], reverse=True
    )
    chain = [by_end[0]]
    visited = {id(by_end[0])}
    while True:
        cutoff = chain[-1]["ts"]
        successor = None
        for event in by_end:
            end = event["ts"] + event["dur"]
            # The visited guard keeps zero-duration spans (end ==
            # cutoff) from being re-selected forever.
            if end <= cutoff and id(event) not in visited:
                successor = event
                break
        if successor is None:
            break
        visited.add(id(successor))
        chain.append(successor)
    chain.reverse()
    return chain


def summarize_trace(payload: dict, top: int = 10) -> str:
    """Terminal summary of a trace: lanes, critical path, slow spans."""
    from repro.analysis.report import render_table

    events = _complete_events(payload)
    lines: List[str] = []
    if not events:
        return "empty trace: no complete span events"
    starts = [e["ts"] for e in events]
    ends = [e["ts"] + e["dur"] for e in events]
    wall_us = max(ends) - min(starts)
    lanes: Dict[str, List[dict]] = {}
    for event in events:
        lanes.setdefault(_event_lane(event), []).append(event)
    lines.append(
        f"trace: {len(events)} spans across {len(lanes)} lanes, "
        f"wall-clock {wall_us / 1e6:.3f}s"
    )
    failed = sum(
        1 for e in events if (e.get("args") or {}).get("failed")
    )
    if failed:
        lines.append(f"FAILED SPANS: {failed}")

    rows = []
    for lane in sorted(lanes):
        lane_events = lanes[lane]
        busy_us = _union_seconds([
            (e["ts"], e["ts"] + e["dur"]) for e in lane_events
        ])
        rows.append([
            lane,
            len(lane_events),
            f"{busy_us / 1e6:.3f}",
            f"{busy_us / wall_us:.0%}" if wall_us else "-",
        ])
    lines.append("")
    lines.append(render_table(
        ["lane", "spans", "busy_s", "utilization"],
        rows,
        title="per-lane utilization",
    ))

    chain = _critical_path(events)
    chain_us = sum(e["dur"] for e in chain)
    rows = [
        [
            e["name"],
            _event_lane(e),
            f"{(e['ts'] - min(starts)) / 1e6:.3f}",
            f"{e['dur'] / 1e6:.3f}",
        ]
        for e in chain[-top:]
    ]
    lines.append("")
    lines.append(render_table(
        ["span", "lane", "start_s", "duration_s"],
        rows,
        title=(
            f"critical path (approx, {len(chain)} spans, "
            f"{chain_us / wall_us:.0%} of wall-clock)"
            if wall_us else "critical path"
        ),
    ))

    slowest = sorted(events, key=lambda e: e["dur"], reverse=True)[:top]
    rows = [
        [
            e["name"],
            _event_lane(e),
            f"{e['dur'] / 1e6:.3f}",
            "FAILED" if (e.get("args") or {}).get("failed") else "-",
        ]
        for e in slowest
    ]
    lines.append("")
    lines.append(render_table(
        ["span", "lane", "duration_s", "status"],
        rows,
        title=f"top {len(slowest)} slowest spans",
    ))
    return "\n".join(lines)
