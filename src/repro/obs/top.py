"""``repro obs top`` — a polling live dashboard for a running server.

Scrapes ``/health`` and ``/metrics`` (the JSON document) from a
:class:`~repro.serve.server.ReproServeServer` every ``--interval``
seconds and renders a terminal dashboard: the sliding-window SLO
rollup (qps / error rate / p99 over the trailing 1 m and 5 m) plus a
per-route table with request counts, instantaneous qps (counter deltas
between polls), and exact-bucket latency quantiles from the server's
histograms.

Everything here is injectable (fetcher, clock, sleep, output sink) so
the refresh loop is unit-testable without a socket; the CLI wires in
the real :class:`~repro.serve.client.HttpSession`-based fetcher.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ReproError
from repro.obs.telemetry import HistogramStats

#: ANSI clear-screen + home, prefixed to each frame unless --no-clear.
CLEAR = "\x1b[2J\x1b[H"

#: Timer/histogram names surfaced as dashboard rows, most aggregated
#: first.  Route histograms (``serve.http.route.*``) are discovered
#: dynamically and appended after these.
_TOP_LEVEL_ROWS = (
    ("whois", "serve.whois.request"),
    ("http", "serve.http.request"),
)


def parse_target(target: str) -> Tuple[str, int]:
    """``host:port`` or ``http://host:port[/...]`` → ``(host, port)``."""
    text = target.strip()
    for prefix in ("http://", "https://"):
        if text.startswith(prefix):
            text = text[len(prefix):]
    text = text.split("/", 1)[0]
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ReproError(
            f"obs top: target {target!r} is not host:port or a URL"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ReproError(
            f"obs top: bad port in target {target!r}"
        ) from None
    return host, port


def fetch_snapshot(host: str, port: int) -> Tuple[dict, dict]:
    """One poll: ``(health, metrics)`` documents from the server."""
    import asyncio

    from repro.serve.client import HttpSession

    async def _go() -> Tuple[dict, dict]:
        session = HttpSession(host, port, client_id="obs-top")
        await session.connect()
        try:
            documents = []
            for path in ("/health", "/metrics"):
                status, _headers, body = await session.get(path)
                if status != 200:
                    raise ReproError(
                        f"obs top: GET {path} answered {status}"
                    )
                documents.append(json.loads(body.decode("utf-8")))
            return documents[0], documents[1]
        finally:
            await session.close()

    try:
        return asyncio.run(_go())
    except (ConnectionError, OSError) as exc:
        raise ReproError(
            f"obs top: cannot reach {host}:{port}: {exc}"
        ) from exc


def _quantile_of(histogram_json: Optional[dict], q: float) -> float:
    if not histogram_json:
        return 0.0
    return HistogramStats.from_json(histogram_json).quantile(q)


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.3f}"


def render_dashboard(
    health: dict,
    metrics: dict,
    *,
    previous: Optional[dict] = None,
    elapsed: float = 0.0,
) -> str:
    """One dashboard frame as text.

    ``previous`` is the prior poll's metrics document; counter deltas
    divided by ``elapsed`` give the instantaneous qps column (blank on
    the first frame).
    """
    from repro.analysis.report import render_table

    window = health.get("window") or {}
    slo_rows = []
    for key in ("1m", "5m"):
        snap = window.get(key) or {}
        slo_rows.append([
            key,
            snap.get("requests", 0),
            f"{snap.get('qps', 0.0):.2f}",
            f"{snap.get('errorRate', 0.0):.4f}",
            _fmt_ms(snap.get("p99Seconds", 0.0)),
        ])
    status = health.get("status", "?")
    uptime = health.get("uptimeSeconds", 0.0)
    live = (health.get("connections") or {}).get("live", 0)
    frame = [render_table(
        ["window", "requests", "qps", "error rate", "p99 (ms)"],
        slo_rows,
        title=(
            f"repro obs top — {status}, up {uptime:.0f}s, "
            f"{live} live connection(s)"
        ),
    )]

    histograms = metrics.get("histograms") or {}
    timers = metrics.get("timers") or {}
    rows = []
    names = list(_TOP_LEVEL_ROWS)
    route_prefix = "serve.http.route."
    names.extend(
        (name[len(route_prefix):], name)
        for name in sorted(histograms)
        if name.startswith(route_prefix)
    )
    previous_timers = (previous or {}).get("timers") or {}
    for label, name in names:
        timer = timers.get(name) or {}
        count = timer.get("count", 0)
        if not count:
            continue
        if elapsed > 0:
            before = (previous_timers.get(name) or {}).get("count", 0)
            qps = f"{max(0, count - before) / elapsed:.2f}"
        else:
            qps = "-"
        histogram = histograms.get(name)
        rows.append([
            label,
            count,
            qps,
            _fmt_ms(timer.get("mean_seconds", 0.0)),
            _fmt_ms(_quantile_of(histogram, 0.50)),
            _fmt_ms(_quantile_of(histogram, 0.99)),
        ])
    if rows:
        frame.append(render_table(
            ["route", "requests", "qps", "mean (ms)",
             "p50 (ms)", "p99 (ms)"],
            rows,
            title="per-route latency (server-side histograms)",
        ))
    mismatched = (metrics.get("counters") or {}).get(
        "spans.mismatched", 0
    )
    if mismatched:
        frame.append(
            f"warning: {mismatched} mismatched span exit(s) recorded"
        )
    return "\n".join(frame)


def run_top(
    target: str,
    *,
    interval: float = 2.0,
    count: Optional[int] = None,
    clear: bool = True,
    fetch: Optional[Callable[[str, int], Tuple[dict, dict]]] = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
    out: Callable[[str], None] = print,
) -> int:
    """The polling loop behind ``repro obs top``.

    Fetches, renders, sleeps, repeats — forever by default, or
    ``count`` frames when given (the testable/scriptable mode).
    ``KeyboardInterrupt`` exits cleanly with status 0.
    """
    if interval <= 0:
        raise ReproError(
            f"obs top: --interval must be positive (got {interval:g})"
        )
    host, port = parse_target(target)
    fetcher = fetch or fetch_snapshot
    previous: Optional[Dict] = None
    previous_at = 0.0
    frames = 0
    try:
        while count is None or frames < count:
            health, metrics = fetcher(host, port)
            now = clock()
            frame = render_dashboard(
                health,
                metrics,
                previous=previous,
                elapsed=(now - previous_at) if previous else 0.0,
            )
            out(CLEAR + frame if clear else frame)
            previous, previous_at = metrics, now
            frames += 1
            if count is None or frames < count:
                sleep(interval)
    except KeyboardInterrupt:
        pass
    return 0
