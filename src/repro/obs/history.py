"""Cross-run regression history: every manifest becomes a baseline.

A run manifest (``--metrics-out``) audits *one* run; catching the PR
that silently made Fig. 6 slower needs runs compared *over time*.
:class:`RunHistory` is the longitudinal store: an append-only JSONL
file where each line is one recorded run, condensed from its manifest
into the comparable facts —

- per-stage / per-timer wall-clock totals,
- the §4 attrition table (records in / out / dropped per filter),
- cache hit and miss counts,
- quarantine totals from degraded runs,
- ``*.malformed`` counters (corrupt cache / shard-store entries),
- ``profile.*`` peak-memory gauges.

On top of the store sit three operations, mirrored by the ``repro
history`` CLI: ``diff`` renders what changed between two runs,
``check`` turns the comparison into a machine-checkable gate (any
shared timer regressing more than ``--max-regress`` fails, as does a
quarantine increase or — for identical configurations — any attrition
drift, which would mean determinism broke), and ``list`` shows the
trajectory.  CI records each run's manifest and checks it against the
previous one, so the benchmark history stops being a pile of text
files and becomes an enforced floor.

Append-only by design (like the sweep journal): recording never
rewrites existing lines, a crash mid-append loses at most the line
being written, and loading skips a truncated tail.
"""

from __future__ import annotations

import datetime
import json
import pathlib
from typing import Dict, List, Optional, Union

from repro.errors import DatasetError

PathLike = Union[str, pathlib.Path]

#: Bump when the entry layout changes incompatibly.
HISTORY_SCHEMA = 1

#: Default store location (relative to the working directory).
DEFAULT_HISTORY_PATH = ".repro-history.jsonl"

#: Timers faster than this in the baseline are never regression-gated:
#: a 3 ms stage doubling is scheduler noise, not a regression.
DEFAULT_MIN_SECONDS = 0.05

#: Peak-memory gauges below this baseline are never regression-gated:
#: allocator noise dominates tiny runs, not the working set.
DEFAULT_MIN_PEAK_KB = 1024.0


def parse_percent(text: Union[str, float]) -> float:
    """``"20%"`` → 0.20; bare numbers pass through (``0.2`` → 0.2)."""
    if isinstance(text, (int, float)):
        value = float(text)
    else:
        stripped = text.strip()
        try:
            if stripped.endswith("%"):
                value = float(stripped[:-1]) / 100.0
            else:
                value = float(stripped)
        except ValueError:
            raise DatasetError(
                f"not a percentage: {text!r} (use e.g. '20%' or '0.2')"
            )
    if value < 0:
        raise DatasetError(f"percentage must be >= 0 (got {text!r})")
    return value


def summarize_manifest(payload: dict) -> dict:
    """Condense a loaded manifest into one comparable history entry.

    Keeps exactly the facts ``diff``/``check`` compare; drops the
    full metric dump (the manifest itself remains the deep record).
    """
    metrics = payload.get("metrics") or {}
    histograms = metrics.get("histograms") or {}
    timers = {}
    for name, stats in (metrics.get("timers") or {}).items():
        entry = {
            "count": stats.get("count", 0),
            "total_seconds": stats.get("total_seconds", 0.0),
            "mean_seconds": stats.get(
                "mean_seconds",
                (stats.get("total_seconds", 0.0) / stats["count"])
                if stats.get("count") else 0.0,
            ),
        }
        histogram = histograms.get(name)
        if histogram and "p99_seconds" in histogram:
            entry["p99_seconds"] = histogram["p99_seconds"]
        timers[name] = entry
    stages = {
        stage.get("name", "?"): {
            "in": stage.get("records_in", 0),
            "out": stage.get("records_out", 0),
            "dropped": dict(stage.get("dropped") or {}),
        }
        for stage in (payload.get("stages") or [])
    }
    degradation = payload.get("degradation") or {}
    gauges = metrics.get("gauges") or {}
    counters = metrics.get("counters") or {}
    extra = payload.get("extra") or {}
    return {
        "schema": HISTORY_SCHEMA,
        "command": payload.get("command", "?"),
        "created": payload.get("created"),
        "config_hash": payload.get("config_hash"),
        "scale": extra.get("scale"),
        "seed": extra.get("seed"),
        "stages": stages,
        "timers": timers,
        "cache": dict(payload.get("cache") or {}),
        "quarantined": degradation.get("quarantined_total", 0),
        # ``spans.mismatched`` rides in the malformed map on purpose:
        # corrupted span nesting is an integrity signal like corrupt
        # cache entries, and any increase fails ``history check``.
        "malformed": {
            name: value
            for name, value in counters.items()
            if name.endswith(".malformed") or name == "spans.mismatched"
        },
        "profile": {
            name: value
            for name, value in gauges.items()
            if name.startswith("profile.")
        },
    }


def _cache_hit_rate(entry: dict) -> Optional[float]:
    cache = entry.get("cache") or {}
    total = cache.get("hits", 0) + cache.get("misses", 0)
    if total == 0:
        return None
    return cache.get("hits", 0) / total


class RunHistory:
    """The append-only JSONL store behind ``repro history``."""

    def __init__(self, path: PathLike = DEFAULT_HISTORY_PATH):
        self._path = pathlib.Path(path)

    @property
    def path(self) -> pathlib.Path:
        return self._path

    # -- reading --------------------------------------------------------

    def entries(self) -> List[dict]:
        """Every recorded run, oldest first.

        Skips blank and truncated lines (a crash mid-append loses at
        most the line being written); raises :class:`DatasetError`
        only when the file itself is unreadable.
        """
        if not self._path.exists():
            return []
        try:
            text = self._path.read_text(encoding="utf-8")
        except OSError as exc:
            raise DatasetError(
                f"cannot read run history {self._path}: {exc}"
            ) from exc
        entries: List[dict] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and "id" in entry:
                entries.append(entry)
        return entries

    def entry(self, entry_id: int) -> dict:
        for entry in self.entries():
            if entry.get("id") == entry_id:
                return entry
        raise DatasetError(
            f"no run #{entry_id} in {self._path} "
            f"(have {len(self.entries())} entries)"
        )

    def latest(self) -> dict:
        entries = self.entries()
        if not entries:
            raise DatasetError(f"run history {self._path} is empty")
        return entries[-1]

    # -- writing --------------------------------------------------------

    def record(self, manifest_payload: dict) -> dict:
        """Append one manifest as a history entry; returns the entry."""
        entries = self.entries()
        entry = summarize_manifest(manifest_payload)
        entry["id"] = (entries[-1]["id"] + 1) if entries else 1
        entry["recorded"] = datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(timespec="seconds")
        if self._path.parent != pathlib.Path(""):
            self._path.parent.mkdir(parents=True, exist_ok=True)
        with open(self._path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
        return entry

    # -- comparison -----------------------------------------------------

    def diff(self, baseline_id: int, candidate_id: int) -> str:
        return render_diff(
            self.entry(baseline_id), self.entry(candidate_id)
        )

    def check(
        self,
        baseline_id: int,
        candidate_id: Optional[int] = None,
        *,
        max_regress: float = 0.20,
        min_seconds: float = DEFAULT_MIN_SECONDS,
        min_peak_kb: float = DEFAULT_MIN_PEAK_KB,
    ) -> List[str]:
        baseline = self.entry(baseline_id)
        candidate = (
            self.latest()
            if candidate_id is None
            else self.entry(candidate_id)
        )
        return find_regressions(
            baseline, candidate,
            max_regress=max_regress, min_seconds=min_seconds,
            min_peak_kb=min_peak_kb,
        )


def render_list(entries: List[dict]) -> str:
    """The ``repro history list`` table."""
    from repro.analysis.report import render_table

    if not entries:
        return "run history is empty"
    rows = []
    for entry in entries:
        wall = (entry.get("timers") or {}).get("runner", {})
        hit_rate = _cache_hit_rate(entry)
        digest = entry.get("config_hash") or ""
        rows.append([
            entry.get("id", "?"),
            entry.get("recorded", "?"),
            entry.get("command", "?"),
            digest[:12] or "-",
            f"{wall.get('total_seconds'):.2f}"
            if wall.get("total_seconds") is not None else "-",
            f"{hit_rate:.0%}" if hit_rate is not None else "-",
            entry.get("quarantined", 0) or "-",
        ])
    return render_table(
        ["id", "recorded", "command", "config", "runner_s",
         "cache_hit", "quarantined"],
        rows,
        title="run history",
    )


def render_diff(baseline: dict, candidate: dict) -> str:
    """Human-readable comparison of two history entries."""
    from repro.analysis.report import render_table

    lines: List[str] = []
    lines.append(
        f"run #{baseline.get('id')} ({baseline.get('command')}, "
        f"{baseline.get('recorded')}) vs "
        f"run #{candidate.get('id')} ({candidate.get('command')}, "
        f"{candidate.get('recorded')})"
    )
    same_config = (
        baseline.get("config_hash") is not None
        and baseline.get("config_hash") == candidate.get("config_hash")
    )
    lines.append(
        "config: identical"
        if same_config
        else "config: DIFFERENT (timings compare across configs; "
             "attrition is expected to move)"
    )

    rows = []
    base_timers: Dict[str, dict] = baseline.get("timers") or {}
    cand_timers: Dict[str, dict] = candidate.get("timers") or {}
    for name in sorted(set(base_timers) | set(cand_timers)):
        a = base_timers.get(name, {}).get("total_seconds")
        b = cand_timers.get(name, {}).get("total_seconds")
        if a is None or b is None:
            delta = "added" if a is None else "removed"
        elif a > 0:
            delta = f"{(b - a) / a:+.1%}"
        else:
            delta = "-"
        p99_a = base_timers.get(name, {}).get("p99_seconds")
        p99_b = cand_timers.get(name, {}).get("p99_seconds")
        rows.append([
            name,
            f"{a:.3f}" if a is not None else "-",
            f"{b:.3f}" if b is not None else "-",
            delta,
            f"{p99_a:.4f}" if p99_a is not None else "-",
            f"{p99_b:.4f}" if p99_b is not None else "-",
        ])
    if rows:
        lines.append("")
        lines.append(render_table(
            ["timer", "baseline_s", "candidate_s", "delta",
             "p99_base", "p99_cand"],
            rows,
            title="stage timings",
        ))

    rows = []
    base_stages: Dict[str, dict] = baseline.get("stages") or {}
    cand_stages: Dict[str, dict] = candidate.get("stages") or {}
    for name in sorted(set(base_stages) | set(cand_stages)):
        a = base_stages.get(name)
        b = cand_stages.get(name)
        if a is None or b is None:
            rows.append([
                name, "-", "-",
                "added" if a is None else "removed",
            ])
            continue
        changed = (
            a.get("in") != b.get("in")
            or a.get("out") != b.get("out")
            or (a.get("dropped") or {}) != (b.get("dropped") or {})
        )
        rows.append([
            name,
            f"{a.get('in')} -> {a.get('out')}",
            f"{b.get('in')} -> {b.get('out')}",
            "CHANGED" if changed else "same",
        ])
    if rows:
        lines.append("")
        lines.append(render_table(
            ["stage", "baseline in->out", "candidate in->out", "attrition"],
            rows,
            title="stage attrition",
        ))

    rows = []
    base_rate = _cache_hit_rate(baseline)
    cand_rate = _cache_hit_rate(candidate)
    rows.append([
        "cache hit rate",
        f"{base_rate:.0%}" if base_rate is not None else "-",
        f"{cand_rate:.0%}" if cand_rate is not None else "-",
    ])
    rows.append([
        "quarantined records",
        baseline.get("quarantined", 0),
        candidate.get("quarantined", 0),
    ])
    base_malformed: Dict[str, int] = baseline.get("malformed") or {}
    cand_malformed: Dict[str, int] = candidate.get("malformed") or {}
    for name in sorted(set(base_malformed) | set(cand_malformed)):
        rows.append([
            name,
            base_malformed.get(name, 0),
            cand_malformed.get(name, 0),
        ])
    base_profile: Dict[str, float] = baseline.get("profile") or {}
    cand_profile: Dict[str, float] = candidate.get("profile") or {}
    for name in sorted(set(base_profile) | set(cand_profile)):
        a = base_profile.get(name)
        b = cand_profile.get(name)
        rows.append([
            name,
            f"{a:.0f} kB" if a is not None else "-",
            f"{b:.0f} kB" if b is not None else "-",
        ])
    lines.append("")
    lines.append(render_table(
        ["metric", "baseline", "candidate"],
        rows,
        title="cache / quarantine / memory",
    ))
    return "\n".join(lines)


def find_regressions(
    baseline: dict,
    candidate: dict,
    *,
    max_regress: float = 0.20,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    min_peak_kb: float = DEFAULT_MIN_PEAK_KB,
) -> List[str]:
    """The ``history check`` gate; returns one line per regression.

    - any timer present in both runs whose baseline total is at least
      ``min_seconds`` and whose candidate total exceeds the baseline
      by more than ``max_regress`` (a fraction, e.g. ``0.20``);
    - any timer whose recorded **p99** regressed the same way — the
      tail gate: baseline p99 at least ``min_seconds`` (the noise
      floor), candidate p99 beyond ``max_regress``.  Quantiles are
      exact-bucket (factor-2 bounds), so a flagged p99 moved at least
      one whole bucket — never float jitter;
    - any increase in quarantined records;
    - any increase in a ``*.malformed`` counter (corrupt cache or
      shard-store entries) or in ``spans.mismatched`` (corrupted span
      nesting) — a corruption storm, not a perf issue;
    - any ``profile.*.peak_kb`` gauge whose baseline is at least
      ``min_peak_kb`` and whose candidate exceeds the baseline by
      more than ``max_regress`` (the out-of-core memory floor);
    - for runs with identical config hashes: any drift in the
      attrition table (sequential ≡ parallel determinism means these
      numbers must never move for the same config and inputs).
    """
    regressions: List[str] = []
    base_timers: Dict[str, dict] = baseline.get("timers") or {}
    cand_timers: Dict[str, dict] = candidate.get("timers") or {}
    for name in sorted(set(base_timers) & set(cand_timers)):
        a = base_timers[name].get("total_seconds", 0.0)
        b = cand_timers[name].get("total_seconds", 0.0)
        if a < min_seconds:
            continue
        if b > a * (1.0 + max_regress):
            regressions.append(
                f"timer {name}: {a:.3f}s -> {b:.3f}s "
                f"({(b - a) / a:+.1%}, limit {max_regress:+.0%})"
            )
    for name in sorted(set(base_timers) & set(cand_timers)):
        a = base_timers[name].get("p99_seconds")
        b = cand_timers[name].get("p99_seconds")
        if a is None or b is None or a < min_seconds:
            continue
        if b > a * (1.0 + max_regress):
            regressions.append(
                f"timer {name} p99: {a:.3f}s -> {b:.3f}s "
                f"({(b - a) / a:+.1%}, limit {max_regress:+.0%})"
            )
    base_quarantined = baseline.get("quarantined", 0) or 0
    cand_quarantined = candidate.get("quarantined", 0) or 0
    if cand_quarantined > base_quarantined:
        regressions.append(
            f"quarantined records: {base_quarantined} -> "
            f"{cand_quarantined}"
        )
    base_malformed: Dict[str, int] = baseline.get("malformed") or {}
    cand_malformed: Dict[str, int] = candidate.get("malformed") or {}
    for name in sorted(set(base_malformed) | set(cand_malformed)):
        a = base_malformed.get(name, 0) or 0
        b = cand_malformed.get(name, 0) or 0
        if b > a:
            regressions.append(f"{name} entries: {a} -> {b}")
    base_profile: Dict[str, float] = baseline.get("profile") or {}
    cand_profile: Dict[str, float] = candidate.get("profile") or {}
    for name in sorted(set(base_profile) & set(cand_profile)):
        if not name.endswith(".peak_kb"):
            continue
        a = base_profile[name]
        b = cand_profile[name]
        if a < min_peak_kb:
            continue
        if b > a * (1.0 + max_regress):
            regressions.append(
                f"gauge {name}: {a:.0f} kB -> {b:.0f} kB "
                f"({(b - a) / a:+.1%}, limit {max_regress:+.0%})"
            )
    same_config = (
        baseline.get("config_hash") is not None
        and baseline.get("config_hash") == candidate.get("config_hash")
    )
    if same_config:
        base_stages = baseline.get("stages") or {}
        cand_stages = candidate.get("stages") or {}
        for name in sorted(set(base_stages) | set(cand_stages)):
            if base_stages.get(name) != cand_stages.get(name):
                regressions.append(
                    f"attrition drift at {name!r} with identical "
                    "config (determinism regression)"
                )
    return regressions
