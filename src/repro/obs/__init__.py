"""Pipeline observability: metrics, traces, profiles, manifests, history.

- :mod:`~repro.obs.metrics` — picklable, mergeable
  :class:`MetricsRegistry` (counters / gauges / timers), nestable
  stage :class:`Span` timings, and the shared no-op :data:`NULL`
  registry every instrumented path defaults to,
- :mod:`~repro.obs.telemetry` — quantile-grade latency telemetry:
  mergeable fixed-bucket :class:`HistogramStats` recorded alongside
  every timer, the :class:`SlidingWindow` serve rollup, and the
  Prometheus text exposition (:func:`to_prometheus`) with its strict
  parser (:func:`parse_prometheus_text`),
- :mod:`~repro.obs.trace` — per-span timeline events
  (:class:`TraceBuffer` / :class:`TracingRegistry`) exported as
  Chrome trace-event JSON (``--trace-out``, Perfetto-loadable) with a
  terminal summarizer,
- :mod:`~repro.obs.profile` — opt-in ``tracemalloc``-backed per-stage
  peak-memory gauges (``--profile-mem`` → ``profile.*`` in the
  manifest),
- :mod:`~repro.obs.manifest` — the :class:`RunManifest` JSON artifact
  (config hash, input fingerprints, per-stage attrition, cache
  accounting, timings) plus its loader and pretty-printer,
- :mod:`~repro.obs.history` — the append-only :class:`RunHistory`
  store turning recorded manifests into regression baselines
  (``repro history record/list/diff/check``).
"""

from repro.obs.history import (
    DEFAULT_HISTORY_PATH,
    HISTORY_SCHEMA,
    RunHistory,
    find_regressions,
    parse_percent,
    render_diff,
    render_list,
    summarize_manifest,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    StageRecord,
    config_hash,
    load_manifest,
    render_manifest,
)
from repro.obs.metrics import (
    NULL,
    MetricsRegistry,
    NullRegistry,
    Span,
    TimerStats,
)
from repro.obs.telemetry import (
    HistogramStats,
    SlidingWindow,
    bucket_index,
    bucket_upper_bound,
    mangle_metric_name,
    parse_prometheus_text,
    to_prometheus,
    write_prometheus,
)
from repro.obs.trace import (
    TRACE_SCHEMA,
    TraceBuffer,
    TraceEvent,
    TracingRegistry,
    load_trace,
    summarize_trace,
)

__all__ = [
    "DEFAULT_HISTORY_PATH",
    "HISTORY_SCHEMA",
    "HistogramStats",
    "MANIFEST_SCHEMA",
    "MetricsRegistry",
    "NULL",
    "NullRegistry",
    "RunHistory",
    "RunManifest",
    "SlidingWindow",
    "Span",
    "StageRecord",
    "TRACE_SCHEMA",
    "TimerStats",
    "TraceBuffer",
    "TraceEvent",
    "TracingRegistry",
    "bucket_index",
    "bucket_upper_bound",
    "config_hash",
    "find_regressions",
    "load_manifest",
    "load_trace",
    "mangle_metric_name",
    "parse_percent",
    "parse_prometheus_text",
    "render_diff",
    "render_list",
    "render_manifest",
    "summarize_manifest",
    "summarize_trace",
    "to_prometheus",
    "write_prometheus",
]
