"""Pipeline observability: metrics, traces, profiles, manifests, history.

- :mod:`~repro.obs.metrics` — picklable, mergeable
  :class:`MetricsRegistry` (counters / gauges / timers), nestable
  stage :class:`Span` timings, and the shared no-op :data:`NULL`
  registry every instrumented path defaults to,
- :mod:`~repro.obs.trace` — per-span timeline events
  (:class:`TraceBuffer` / :class:`TracingRegistry`) exported as
  Chrome trace-event JSON (``--trace-out``, Perfetto-loadable) with a
  terminal summarizer,
- :mod:`~repro.obs.profile` — opt-in ``tracemalloc``-backed per-stage
  peak-memory gauges (``--profile-mem`` → ``profile.*`` in the
  manifest),
- :mod:`~repro.obs.manifest` — the :class:`RunManifest` JSON artifact
  (config hash, input fingerprints, per-stage attrition, cache
  accounting, timings) plus its loader and pretty-printer,
- :mod:`~repro.obs.history` — the append-only :class:`RunHistory`
  store turning recorded manifests into regression baselines
  (``repro history record/list/diff/check``).
"""

from repro.obs.history import (
    DEFAULT_HISTORY_PATH,
    HISTORY_SCHEMA,
    RunHistory,
    find_regressions,
    parse_percent,
    render_diff,
    render_list,
    summarize_manifest,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    StageRecord,
    config_hash,
    load_manifest,
    render_manifest,
)
from repro.obs.metrics import (
    NULL,
    MetricsRegistry,
    NullRegistry,
    Span,
    TimerStats,
)
from repro.obs.trace import (
    TRACE_SCHEMA,
    TraceBuffer,
    TraceEvent,
    TracingRegistry,
    load_trace,
    summarize_trace,
)

__all__ = [
    "DEFAULT_HISTORY_PATH",
    "HISTORY_SCHEMA",
    "MANIFEST_SCHEMA",
    "MetricsRegistry",
    "NULL",
    "NullRegistry",
    "RunHistory",
    "RunManifest",
    "Span",
    "StageRecord",
    "TRACE_SCHEMA",
    "TimerStats",
    "TraceBuffer",
    "TraceEvent",
    "TracingRegistry",
    "config_hash",
    "find_regressions",
    "load_manifest",
    "load_trace",
    "parse_percent",
    "render_diff",
    "render_list",
    "render_manifest",
    "summarize_manifest",
    "summarize_trace",
]
