"""Pipeline observability: metrics, stage spans, and run manifests.

- :mod:`~repro.obs.metrics` — picklable, mergeable
  :class:`MetricsRegistry` (counters / gauges / timers), nestable
  stage :class:`Span` timings, and the shared no-op :data:`NULL`
  registry every instrumented path defaults to,
- :mod:`~repro.obs.manifest` — the :class:`RunManifest` JSON artifact
  (config hash, input fingerprints, per-stage attrition, cache
  accounting, timings) plus its loader and pretty-printer.
"""

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    StageRecord,
    config_hash,
    load_manifest,
    render_manifest,
)
from repro.obs.metrics import (
    NULL,
    MetricsRegistry,
    NullRegistry,
    Span,
    TimerStats,
)

__all__ = [
    "MANIFEST_SCHEMA",
    "MetricsRegistry",
    "NULL",
    "NullRegistry",
    "RunManifest",
    "Span",
    "StageRecord",
    "TimerStats",
    "config_hash",
    "load_manifest",
    "render_manifest",
]
