"""The bogon reference: private and reserved IPv4 address space.

The paper sanitizes BGP data by removing "all routes for private and
reserved address space" citing the Team Cymru bogon reference.  This
module hard-codes that reference list (the classic, non-fullbogon
variant) and exposes a fast membership check backed by a
:class:`~repro.netbase.prefixset.PrefixSet`.
"""

from __future__ import annotations

from typing import Tuple

from repro.netbase.prefix import IPv4Prefix
from repro.netbase.prefixset import PrefixSet

#: The Team-Cymru-style bogon prefix list (martians), mid-2020 edition.
BOGON_PREFIXES: Tuple[IPv4Prefix, ...] = tuple(
    IPv4Prefix.parse(text)
    for text in (
        "0.0.0.0/8",          # "this" network (RFC 1122)
        "10.0.0.0/8",         # private (RFC 1918)
        "100.64.0.0/10",      # CGN shared space (RFC 6598)
        "127.0.0.0/8",        # loopback (RFC 1122)
        "169.254.0.0/16",     # link local (RFC 3927)
        "172.16.0.0/12",      # private (RFC 1918)
        "192.0.0.0/24",       # IETF protocol assignments (RFC 6890)
        "192.0.2.0/24",       # TEST-NET-1 (RFC 5737)
        "192.168.0.0/16",     # private (RFC 1918)
        "198.18.0.0/15",      # benchmarking (RFC 2544)
        "198.51.100.0/24",    # TEST-NET-2 (RFC 5737)
        "203.0.113.0/24",     # TEST-NET-3 (RFC 5737)
        "224.0.0.0/4",        # multicast (RFC 5771)
        "240.0.0.0/4",        # future use (RFC 1112)
    )
)

_BOGON_SET = PrefixSet(BOGON_PREFIXES)


def bogon_set() -> PrefixSet:
    """Return a *copy* of the bogon prefix set.

    Callers that want to extend the list (e.g. with RIR-quarantined
    space) can mutate the copy without affecting the module-level
    reference used by :func:`is_bogon`.
    """
    return PrefixSet(BOGON_PREFIXES)


def is_bogon(prefix: IPv4Prefix) -> bool:
    """True if ``prefix`` overlaps private or reserved address space.

    Overlap in either direction counts: a /6 covering 10.0.0.0/8 is as
    unroutable as a /24 inside it.
    """
    if _BOGON_SET.covers(prefix):
        return True
    # A very short query prefix may instead *contain* a bogon block.
    for _member in _BOGON_SET.covered_by(prefix):
        return True
    return False
