"""Immutable IPv4 prefix (CIDR block) value type.

The whole library manipulates address space through
:class:`IPv4Prefix`.  The class is deliberately implemented from first
principles (no :mod:`ipaddress` dependency) so the representation is a
compact ``(network_int, length)`` pair: hashable, totally ordered, and
cheap enough to use as a dictionary key in per-day routing tables with
hundreds of thousands of entries.

Ordering follows the conventional routing-table sort: by network address
first, then by prefix length (less-specific first).  That makes a sorted
list of prefixes place every covering prefix immediately before the
prefixes it covers, which several algorithms in :mod:`repro.delegation`
exploit.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple, Union

from repro.errors import PrefixError

#: Total number of bits in an IPv4 address.
ADDRESS_BITS = 32

#: Largest representable IPv4 address as an integer (255.255.255.255).
MAX_ADDRESS = (1 << ADDRESS_BITS) - 1


def parse_address(text: str) -> int:
    """Parse dotted-quad ``text`` into an address integer.

    Raises :class:`~repro.errors.PrefixError` for anything that is not a
    canonical four-octet dotted quad (no octal, no shorthand forms).
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise PrefixError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
            raise PrefixError(f"bad octet {part!r} in {text!r}")
        octet = int(part)
        if octet > 255:
            raise PrefixError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_address(value: int) -> str:
    """Format address integer ``value`` as a dotted quad."""
    if not 0 <= value <= MAX_ADDRESS:
        raise PrefixError(f"address integer out of range: {value}")
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


def _mask(length: int) -> int:
    """Return the network mask for a prefix of ``length`` bits."""
    if length == 0:
        return 0
    return (MAX_ADDRESS << (ADDRESS_BITS - length)) & MAX_ADDRESS


class IPv4Prefix:
    """An immutable IPv4 CIDR prefix such as ``192.0.2.0/24``.

    Instances are canonical: the stored network address always has all
    host bits zeroed; constructing from a non-canonical address raises
    unless ``strict=False`` is passed, in which case host bits are
    silently masked off.

    >>> p = IPv4Prefix.parse("192.0.2.0/24")
    >>> p.length, p.num_addresses
    (24, 256)
    >>> IPv4Prefix.parse("192.0.2.128/25") in p
    True
    """

    __slots__ = ("_network", "_length", "_hash")

    def __init__(self, network: int, length: int, *, strict: bool = True):
        if not 0 <= length <= ADDRESS_BITS:
            raise PrefixError(f"prefix length out of range: {length}")
        if not 0 <= network <= MAX_ADDRESS:
            raise PrefixError(f"network address out of range: {network}")
        masked = network & _mask(length)
        if strict and masked != network:
            raise PrefixError(
                f"{format_address(network)}/{length} has host bits set"
            )
        object.__setattr__(self, "_network", masked)
        object.__setattr__(self, "_length", length)
        # Prefixes spend their lives as dict/set keys (routing tables,
        # delegation timelines), so the hash is precomputed once.
        object.__setattr__(self, "_hash", hash((masked, length)))

    # -- construction -------------------------------------------------

    @classmethod
    def parse(cls, text: str, *, strict: bool = True) -> "IPv4Prefix":
        """Parse ``"a.b.c.d/len"`` (or a bare address, meaning ``/32``)."""
        text = text.strip()
        if "/" in text:
            addr_text, _, len_text = text.partition("/")
            if not len_text.isdigit():
                raise PrefixError(f"bad prefix length in {text!r}")
            length = int(len_text)
        else:
            addr_text, length = text, ADDRESS_BITS
        return cls(parse_address(addr_text), length, strict=strict)

    @classmethod
    def from_range(cls, first: int, last: int) -> List["IPv4Prefix"]:
        """Return the minimal list of prefixes covering ``[first, last]``.

        This mirrors how RIR WHOIS ``inetnum`` ranges map onto CIDR
        blocks.  The result is sorted by network address.
        """
        if first > last:
            raise PrefixError(f"empty range: {first} > {last}")
        if first < 0 or last > MAX_ADDRESS:
            raise PrefixError("range outside IPv4 address space")
        prefixes: List[IPv4Prefix] = []
        while first <= last:
            # The largest block starting at `first` is limited both by
            # alignment of `first` and by the remaining span size.
            max_len_by_align = 0
            if first != 0:
                max_len_by_align = ADDRESS_BITS - (
                    (first & -first).bit_length() - 1
                )
            span = last - first + 1
            max_len_by_span = ADDRESS_BITS - (span.bit_length() - 1)
            length = max(max_len_by_align, max_len_by_span)
            prefixes.append(cls(first, length))
            first += 1 << (ADDRESS_BITS - length)
        return prefixes

    # -- basic accessors ----------------------------------------------

    @property
    def network(self) -> int:
        """Network address as an integer (host bits zero)."""
        return self._network

    @property
    def length(self) -> int:
        """Prefix length in bits (0..32)."""
        return self._length

    @property
    def broadcast(self) -> int:
        """Highest address in the block, as an integer."""
        return self._network | (~_mask(self._length) & MAX_ADDRESS)

    @property
    def num_addresses(self) -> int:
        """Number of addresses covered (2**(32 - length))."""
        return 1 << (ADDRESS_BITS - self._length)

    @property
    def netmask(self) -> int:
        """The network mask as an integer."""
        return _mask(self._length)

    # -- relations ----------------------------------------------------

    def contains_address(self, address: int) -> bool:
        """True if integer ``address`` falls inside this prefix."""
        return (address & _mask(self._length)) == self._network

    def covers(self, other: "IPv4Prefix") -> bool:
        """True if ``other`` is equal to or more specific than self."""
        return (
            other._length >= self._length
            and (other._network & _mask(self._length)) == self._network
        )

    def is_subnet_of(self, other: "IPv4Prefix") -> bool:
        """True if self is equal to or more specific than ``other``."""
        return other.covers(self)

    def is_proper_subnet_of(self, other: "IPv4Prefix") -> bool:
        """True if self is strictly more specific than ``other``."""
        return other.covers(self) and other._length < self._length

    def overlaps(self, other: "IPv4Prefix") -> bool:
        """True if the two blocks share any address."""
        return self.covers(other) or other.covers(self)

    # -- derivation ---------------------------------------------------

    def supernet(self, new_length: Union[int, None] = None) -> "IPv4Prefix":
        """Return the covering prefix of ``new_length`` (default: one bit
        shorter)."""
        if new_length is None:
            new_length = self._length - 1
        if not 0 <= new_length <= self._length:
            raise PrefixError(
                f"cannot widen /{self._length} to /{new_length}"
            )
        return IPv4Prefix(self._network & _mask(new_length), new_length)

    def subnets(self, new_length: Union[int, None] = None) -> Iterator["IPv4Prefix"]:
        """Yield the subnets of ``new_length`` (default: one bit longer)."""
        if new_length is None:
            new_length = self._length + 1
        if not self._length <= new_length <= ADDRESS_BITS:
            raise PrefixError(
                f"cannot split /{self._length} into /{new_length}"
            )
        step = 1 << (ADDRESS_BITS - new_length)
        for network in range(self._network, self.broadcast + 1, step):
            yield IPv4Prefix(network, new_length)

    def halves(self) -> Tuple["IPv4Prefix", "IPv4Prefix"]:
        """Split into the two subnets one bit longer."""
        low, high = self.subnets()
        return low, high

    def sibling(self) -> "IPv4Prefix":
        """Return the other half of this prefix's immediate supernet."""
        if self._length == 0:
            raise PrefixError("0.0.0.0/0 has no sibling")
        flip = 1 << (ADDRESS_BITS - self._length)
        return IPv4Prefix(self._network ^ flip, self._length)

    def bit(self, index: int) -> int:
        """Return bit ``index`` (0 = most significant) of the network."""
        if not 0 <= index < ADDRESS_BITS:
            raise PrefixError(f"bit index out of range: {index}")
        return (self._network >> (ADDRESS_BITS - 1 - index)) & 1

    # -- dunder protocol ----------------------------------------------

    def __contains__(self, item: Union["IPv4Prefix", int]) -> bool:
        if isinstance(item, IPv4Prefix):
            return self.covers(item)
        return self.contains_address(int(item))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IPv4Prefix):
            return NotImplemented
        return (
            self._network == other._network and self._length == other._length
        )

    def __lt__(self, other: "IPv4Prefix") -> bool:
        if not isinstance(other, IPv4Prefix):
            return NotImplemented
        return (self._network, self._length) < (other._network, other._length)

    def __le__(self, other: "IPv4Prefix") -> bool:
        if not isinstance(other, IPv4Prefix):
            return NotImplemented
        return (self._network, self._length) <= (other._network, other._length)

    def __gt__(self, other: "IPv4Prefix") -> bool:
        result = self.__le__(other)
        if result is NotImplemented:
            return result
        return not result

    def __ge__(self, other: "IPv4Prefix") -> bool:
        result = self.__lt__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"IPv4Prefix.parse({str(self)!r})"

    def __str__(self) -> str:
        return f"{format_address(self._network)}/{self._length}"

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("IPv4Prefix is immutable")

    def __reduce__(self):
        # The default slots-based pickling restores state via
        # ``setattr``, which the immutability guard above rejects;
        # rebuild through __init__ instead (the stored network is
        # already canonical, so strict mode is safe).  Without this,
        # prefixes cannot cross process boundaries — which the
        # parallel runner and rule sweeps rely on.
        return (self.__class__, (self._network, self._length))
