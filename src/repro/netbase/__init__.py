"""Low-level IPv4/ASN value types and data structures.

This subpackage is the foundation everything else builds on:

- :class:`~repro.netbase.prefix.IPv4Prefix` — immutable IPv4 CIDR prefix.
- :class:`~repro.netbase.trie.PrefixTrie` — binary radix trie mapping
  prefixes to values with longest-prefix-match and cover queries.
- :mod:`~repro.netbase.lpm` — the columnar sorted-array equivalent of
  the trie (packed keys, batch cover kernel) used on hot paths.
- :class:`~repro.netbase.prefixset.PrefixSet` — set of prefixes with
  aggregation and address-count semantics.
- :mod:`~repro.netbase.asnum` — AS-number validation and origin sets.
- :class:`~repro.netbase.aspath.ASPath` — AS-path model with AS_SET
  segments and loop detection.
- :mod:`~repro.netbase.bogons` — the Team-Cymru-style bogon reference.
"""

from repro.netbase.asnum import (
    AS_TRANS,
    MAX_ASN,
    OriginSet,
    is_private_asn,
    is_reserved_asn,
    validate_asn,
)
from repro.netbase.aspath import ASPath, ASPathSegment, SegmentType
from repro.netbase.bogons import BOGON_PREFIXES, bogon_set, is_bogon
from repro.netbase.lpm import (
    SortedPrefixMap,
    nearest_strict_covers,
    pack,
    unpack,
)
from repro.netbase.prefix import IPv4Prefix, format_address, parse_address
from repro.netbase.prefixset import PrefixSet, aggregate
from repro.netbase.trie import PrefixTrie

__all__ = [
    "AS_TRANS",
    "ASPath",
    "ASPathSegment",
    "BOGON_PREFIXES",
    "IPv4Prefix",
    "MAX_ASN",
    "OriginSet",
    "PrefixSet",
    "PrefixTrie",
    "SegmentType",
    "SortedPrefixMap",
    "aggregate",
    "bogon_set",
    "format_address",
    "is_bogon",
    "is_private_asn",
    "is_reserved_asn",
    "nearest_strict_covers",
    "pack",
    "parse_address",
    "unpack",
    "validate_asn",
]
