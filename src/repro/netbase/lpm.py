"""Sorted-array longest-prefix-match kernel.

:class:`~repro.netbase.trie.PrefixTrie` is the *reference*
implementation of the three cover-query families (exact, covering,
covered): one pointer-chasing node per prefix bit, obviously correct,
O(32) per query.  On the hot per-day inference path that object soup
dominates the profile, so this module provides the same queries on a
*columnar* representation — one sorted ``array('Q')`` of packed
``(network << 6) | length`` keys plus a parallel value list:

- :func:`pack` / :func:`unpack` — the packed-key codec.  Sorting packed
  keys ascending is exactly the routing-table ``(network, length)``
  order :class:`~repro.netbase.prefix.IPv4Prefix` defines, which places
  every covering prefix before the prefixes it covers.
- :class:`SortedPrefixMap` — an immutable, trie-equivalent map built in
  one shot from items; ``longest_match`` / ``covering`` / ``covered``
  answer in O(L log n) where L is the number of *distinct* prefix
  lengths present (≤ 33, typically ~10).
- :func:`nearest_strict_covers` — the batch kernel behind the
  Krenc–Feldmann core step: for *every* entry of a sorted key array,
  the index of its most-specific strictly-covering entry, computed in
  one O(n) stack pass instead of n trie walks.

A hypothesis property suite (``tests/netbase/test_lpm_properties.py``)
pins the equivalence of every query family against the trie, including
/0 and /32 edge lengths and duplicate inserts.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, List, Optional, Tuple, TypeVar

from repro.netbase.prefix import ADDRESS_BITS, IPv4Prefix

V = TypeVar("V")

#: The typecodes every packed codec in the repo depends on, with the
#: byte widths their on-disk formats (v2 cache quads, delta-journal
#: columns, shard files) assume.  ``array`` only guarantees *minimum*
#: sizes, so codecs must check before trusting ``tobytes``/``frombytes``
#: round-trips across platforms.
_CODEC_ITEMSIZES = (("B", 1), ("I", 4), ("Q", 8))


def require_codec_itemsizes() -> None:
    """Assert the ``array`` itemsizes the packed codecs rely on.

    Called once at import by every module with an on-disk packed
    format (:mod:`repro.delegation.runner`, :mod:`repro.delegation.
    delta`, :mod:`repro.store.shard`): a platform where ``array('I')``
    is not 4 bytes or ``array('Q')`` is not 8 would silently misparse
    every entry, so fail loudly instead.
    """
    for typecode, expected in _CODEC_ITEMSIZES:
        actual = array(typecode).itemsize
        if actual != expected:
            raise RuntimeError(
                f"unsupported platform: array({typecode!r}).itemsize is "
                f"{actual}, but the packed binary formats (cache, "
                f"journal, shard) require {expected} bytes; this "
                "platform cannot read or write them"
            )


#: Host-bit masks per prefix length: ``_HOST_BITS[l] = 2**(32-l) - 1``.
_HOST_BITS = tuple(
    (1 << (ADDRESS_BITS - length)) - 1
    for length in range(ADDRESS_BITS + 1)
)


def pack(network: int, length: int) -> int:
    """Pack ``(network, length)`` into one sortable integer key.

    Six low bits hold the length (0..32 needs them all once /32 plus
    the sort-sentinel headroom below is counted); sorting packed keys
    ascending equals sorting prefixes by ``(network, length)``.
    """
    return (network << 6) | length


def unpack(key: int) -> Tuple[int, int]:
    """Inverse of :func:`pack`."""
    return key >> 6, key & 0x3F


def broadcast_of(key: int) -> int:
    """Highest address covered by a packed key's prefix."""
    return (key >> 6) | _HOST_BITS[key & 0x3F]


def nearest_strict_covers(keys: "array") -> List[int]:
    """Most-specific strict cover for every entry of a sorted key array.

    ``keys`` must be sorted ascending (the :func:`pack` order) and
    duplicate-free.  Returns one index per entry — the position of the
    longest stored prefix that *strictly* covers it, or ``-1``.

    One stack pass: because CIDR blocks are either nested or disjoint
    and the sort places covering prefixes immediately before covered
    ones, the stack always holds the open nesting chain; the top is the
    nearest enclosing ancestor of the entry being visited.
    """
    host_bits = _HOST_BITS
    out = [-1] * len(keys)
    stack_ends: List[int] = []
    stack_idx: List[int] = []
    for i, key in enumerate(keys):
        network = key >> 6
        while stack_ends and stack_ends[-1] < network:
            stack_ends.pop()
            stack_idx.pop()
        if stack_idx:
            out[i] = stack_idx[-1]
        stack_ends.append(network | host_bits[key & 0x3F])
        stack_idx.append(i)
    return out


def day_shard_bounds(
    keys: "array", shards: int
) -> List[Tuple[int, int]]:
    """Cut one sorted key array into cover-safe contiguous ranges.

    Returns exactly ``shards`` half-open ``(low, high)`` index ranges
    that partition ``[0, len(keys))`` (trailing ranges may be empty).
    A cut before index *i* is **safe** iff no earlier prefix covers
    ``keys[i]`` — equivalently, the running maximum broadcast address
    over ``keys[:i]`` lies below ``keys[i]``'s network.  At a safe cut
    the :func:`nearest_strict_covers` nesting stack is provably empty,
    so running the cover pass on each range independently and
    concatenating the answers (with per-range indices offset by
    ``low``) is *identical* to one pass over the whole array — the
    invariant behind per-/8 intra-day sharding: on real routing
    tables, where no announced prefix is shorter than a /8, every
    top-octet transition is such a cut, so the chosen cuts land on /8
    block boundaries.

    Cuts are placed at the first safe index at or after each
    equal-count target, one O(n) pass total.  ``keys`` must be sorted
    ascending and duplicate-free (:func:`pack` order).
    """
    if shards < 1:
        raise ValueError(f"shards must be at least 1 (got {shards})")
    n = len(keys)
    bounds: List[Tuple[int, int]] = []
    if shards > 1 and n > 0:
        targets = [n * s // shards for s in range(1, shards)]
        host_bits = _HOST_BITS
        low = 0
        max_end = -1
        t = 0
        for i, key in enumerate(keys):
            if (
                t < len(targets)
                and i >= targets[t]
                and i > low
                and max_end < (key >> 6)
            ):
                bounds.append((low, i))
                low = i
                while t < len(targets) and targets[t] <= i:
                    t += 1
            end = (key >> 6) | host_bits[key & 0x3F]
            if end > max_end:
                max_end = end
        bounds.append((low, n))
    else:
        bounds.append((0, n))
    while len(bounds) < shards:
        bounds.append((n, n))
    return bounds


def diff_sorted_keys(
    old_keys: "array", new_keys: "array"
) -> Tuple[List[int], List[int], List[Tuple[int, int]]]:
    """Partition two sorted, duplicate-free key arrays in one pass.

    Returns ``(removed, added, common)`` where ``removed`` holds
    indices into ``old_keys`` of keys absent from ``new_keys``,
    ``added`` holds indices into ``new_keys`` of keys absent from
    ``old_keys``, and ``common`` pairs ``(old_index, new_index)`` for
    keys present in both.  This is the merge-walk core behind
    day-over-day :class:`~repro.bgp.rib.PairTable` diffing: O(n + m)
    with no hashing, because both inputs are already in :func:`pack`
    order.
    """
    removed: List[int] = []
    added: List[int] = []
    common: List[Tuple[int, int]] = []
    i = j = 0
    old_len = len(old_keys)
    new_len = len(new_keys)
    while i < old_len and j < new_len:
        old_key = old_keys[i]
        new_key = new_keys[j]
        if old_key == new_key:
            common.append((i, j))
            i += 1
            j += 1
        elif old_key < new_key:
            removed.append(i)
            i += 1
        else:
            added.append(j)
            j += 1
    while i < old_len:
        removed.append(i)
        i += 1
    while j < new_len:
        added.append(j)
        j += 1
    return removed, added, common


class SortedPrefixMap:
    """Immutable prefix → value map over packed sorted arrays.

    Query-equivalent to :class:`~repro.netbase.trie.PrefixTrie` (which
    stays the mutable reference implementation): ``longest_match``,
    ``covering`` and ``covered`` return/yield the same entries in the
    same order.  Built in one shot from ``(prefix, value)`` items;
    later duplicates win, exactly like repeated ``trie.insert`` calls.
    """

    __slots__ = ("_keys", "_values", "_lengths")

    def __init__(
        self, items: Iterable[Tuple[IPv4Prefix, V]] = ()
    ) -> None:
        staged = {}
        for prefix, value in items:
            staged[pack(prefix.network, prefix.length)] = value
        keys = array("Q", sorted(staged))
        self._keys = keys
        self._values: List[V] = [staged[key] for key in keys]
        # Distinct lengths present, ascending — the only mask widths a
        # cover query ever needs to probe.
        self._lengths: Tuple[int, ...] = tuple(
            sorted({key & 0x3F for key in keys})
        )

    @classmethod
    def from_packed(
        cls, keys: "array", values: List[V]
    ) -> "SortedPrefixMap":
        """Adopt pre-sorted, duplicate-free packed columns (no copy)."""
        instance = cls.__new__(cls)
        instance._keys = keys
        instance._values = values
        instance._lengths = tuple(sorted({key & 0x3F for key in keys}))
        return instance

    # -- exact lookup --------------------------------------------------

    def _find(self, key: int) -> int:
        index = bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            return index
        return -1

    def get(
        self, prefix: IPv4Prefix, default: Optional[V] = None
    ) -> Optional[V]:
        index = self._find(pack(prefix.network, prefix.length))
        if index < 0:
            return default
        return self._values[index]

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        return self._find(pack(prefix.network, prefix.length)) >= 0

    def __getitem__(self, prefix: IPv4Prefix) -> V:
        index = self._find(pack(prefix.network, prefix.length))
        if index < 0:
            raise KeyError(prefix)
        return self._values[index]

    # -- cover queries -------------------------------------------------

    def covering(
        self, prefix: IPv4Prefix
    ) -> Iterator[Tuple[IPv4Prefix, V]]:
        """Stored entries covering ``prefix``, shortest first.

        A stored /l covers the query iff the query's network masked to
        l bits is stored at length l — one exact bisect per distinct
        stored length ≤ the query length.  The candidate lengths come
        straight from a ``bisect_right`` over the precomputed sorted
        ``_lengths`` array instead of a compare-and-break scan, so
        queries never even visit the longer stored lengths.
        """
        network = prefix.network
        length = prefix.length
        lengths = self._lengths
        for candidate in lengths[:bisect_right(lengths, length)]:
            masked = network & ~_HOST_BITS[candidate]
            index = self._find((masked << 6) | candidate)
            if index >= 0:
                yield IPv4Prefix(masked, candidate), self._values[index]

    def longest_match(
        self, prefix: IPv4Prefix
    ) -> Optional[Tuple[IPv4Prefix, V]]:
        """The most-specific stored entry covering ``prefix``.

        Like :meth:`covering`, the probe set is bounded by one
        ``bisect_right`` over the sorted distinct-length array — a
        map dense in long prefixes no longer pays a skip-comparison
        per stored length on every short-prefix lookup.
        """
        network = prefix.network
        length = prefix.length
        lengths = self._lengths
        for candidate in reversed(lengths[:bisect_right(lengths, length)]):
            masked = network & ~_HOST_BITS[candidate]
            index = self._find((masked << 6) | candidate)
            if index >= 0:
                return IPv4Prefix(masked, candidate), self._values[index]
        return None

    def covered(
        self, prefix: IPv4Prefix
    ) -> Iterator[Tuple[IPv4Prefix, V]]:
        """Stored entries equal to or inside ``prefix``, sorted.

        Everything inside the block sits in one contiguous slice of the
        sorted keys; only equal-network entries with a *shorter* length
        can fall inside the slice without being covered, so a single
        length comparison filters them.
        """
        keys = self._keys
        length = prefix.length
        low = bisect_left(keys, prefix.network << 6)
        high = bisect_right(keys, (prefix.broadcast << 6) | 0x3F)
        for index in range(low, high):
            key = keys[index]
            key_length = key & 0x3F
            if key_length < length:
                continue
            yield IPv4Prefix(key >> 6, key_length), self._values[index]

    # -- iteration -----------------------------------------------------

    def items(self) -> Iterator[Tuple[IPv4Prefix, V]]:
        for index, key in enumerate(self._keys):
            yield IPv4Prefix(key >> 6, key & 0x3F), self._values[index]

    def keys(self) -> Iterator[IPv4Prefix]:
        for prefix, _value in self.items():
            yield prefix

    def values(self) -> Iterator[V]:
        return iter(self._values)

    def __iter__(self) -> Iterator[IPv4Prefix]:
        return self.keys()

    def __len__(self) -> int:
        return len(self._keys)

    def __bool__(self) -> bool:
        return bool(self._keys)

    def __repr__(self) -> str:
        return f"<SortedPrefixMap with {len(self._keys)} entries>"
