"""Autonomous-system number validation and origin sets.

The delegation-inference pipeline must drop routes whose AS path
contains numbers "currently reserved by IANA" (paper §4, sanitization
step), and must distinguish single-origin announcements from AS_SET /
multi-origin (MOAS) ones.  This module provides both.

Reserved ranges follow the IANA "Autonomous System (AS) Numbers"
registry as of mid-2020.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Tuple

from repro.errors import ASNumberError

#: Largest 4-byte AS number.
MAX_ASN = 4_294_967_295

#: AS_TRANS (RFC 6793): placeholder for 4-byte ASNs on 2-byte sessions.
AS_TRANS = 23_456

#: (first, last) ranges IANA reserves outside private use.
_RESERVED_RANGES: Tuple[Tuple[int, int], ...] = (
    (0, 0),                          # RFC 7607
    (AS_TRANS, AS_TRANS),            # RFC 6793
    (64_496, 64_511),                # RFC 5398 documentation
    (65_535, 65_535),                # RFC 7300
    (65_536, 65_551),                # RFC 5398 documentation
    (65_552, 131_071),               # IANA reserved
    (MAX_ASN, MAX_ASN),              # RFC 7300
)

#: (first, last) private-use ranges (RFC 6996).
_PRIVATE_RANGES: Tuple[Tuple[int, int], ...] = (
    (64_512, 65_534),
    (4_200_000_000, 4_294_967_294),
)


def validate_asn(asn: int) -> int:
    """Return ``asn`` if it is a syntactically valid AS number.

    Raises :class:`~repro.errors.ASNumberError` otherwise.  Reserved and
    private numbers are *valid* here — filtering them out is a policy
    decision made by :func:`is_reserved_asn` / :func:`is_private_asn`.
    """
    if not isinstance(asn, int) or isinstance(asn, bool):
        raise ASNumberError(f"AS number must be an int, got {asn!r}")
    if not 0 <= asn <= MAX_ASN:
        raise ASNumberError(f"AS number out of range: {asn}")
    return asn


def is_reserved_asn(asn: int) -> bool:
    """True if IANA reserves ``asn`` (excluding private-use ranges)."""
    validate_asn(asn)
    return any(first <= asn <= last for first, last in _RESERVED_RANGES)


def is_private_asn(asn: int) -> bool:
    """True if ``asn`` is in an RFC 6996 private-use range."""
    validate_asn(asn)
    return any(first <= asn <= last for first, last in _PRIVATE_RANGES)


def is_routable_asn(asn: int) -> bool:
    """True if ``asn`` may legitimately appear in a public AS path."""
    return not (is_reserved_asn(asn) or is_private_asn(asn))


class OriginSet:
    """The origin of a prefix announcement as seen in BGP.

    A prefix's origin is usually a single AS, but can be an AS_SET (the
    result of proxy aggregation) or — across monitors — a set of
    distinct origins (MOAS).  The paper's inference algorithm drops both
    non-singleton cases (step iii), so the class exposes
    :attr:`is_unique` and :meth:`sole_origin` prominently.
    """

    __slots__ = ("_origins", "_from_as_set")

    def __init__(self, origins: Iterable[int], *, from_as_set: bool = False):
        frozen = frozenset(validate_asn(asn) for asn in origins)
        if not frozen:
            raise ASNumberError("origin set cannot be empty")
        self._origins: FrozenSet[int] = frozen
        self._from_as_set = bool(from_as_set)

    @classmethod
    def single(cls, asn: int) -> "OriginSet":
        """An ordinary single-AS origin."""
        return cls((asn,))

    @property
    def origins(self) -> FrozenSet[int]:
        """The member AS numbers."""
        return self._origins

    @property
    def from_as_set(self) -> bool:
        """True if the origin came from an AS_SET path segment."""
        return self._from_as_set

    @property
    def is_unique(self) -> bool:
        """True for a plain single-AS origin (not AS_SET, not MOAS)."""
        return len(self._origins) == 1 and not self._from_as_set

    def sole_origin(self) -> int:
        """Return the single origin AS; raises if not unique."""
        if not self.is_unique:
            raise ASNumberError(f"origin is not unique: {self!r}")
        return next(iter(self._origins))

    def merge(self, other: "OriginSet") -> "OriginSet":
        """Combine two observations of the same prefix (MOAS union)."""
        return OriginSet(
            self._origins | other._origins,
            from_as_set=self._from_as_set or other._from_as_set,
        )

    def __contains__(self, asn: int) -> bool:
        return asn in self._origins

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._origins))

    def __len__(self) -> int:
        return len(self._origins)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OriginSet):
            return NotImplemented
        return (
            self._origins == other._origins
            and self._from_as_set == other._from_as_set
        )

    def __hash__(self) -> int:
        return hash((self._origins, self._from_as_set))

    def __repr__(self) -> str:
        members = ",".join(str(asn) for asn in sorted(self._origins))
        tag = " AS_SET" if self._from_as_set else ""
        return f"<OriginSet {{{members}}}{tag}>"
