"""Binary radix trie keyed by IPv4 prefixes.

The trie is the workhorse behind routing-table lookups, bogon checks,
WHOIS ``inetnum`` hierarchies, and delegation matching.  It maps
:class:`~repro.netbase.prefix.IPv4Prefix` keys to arbitrary values and
supports the three query families the reproduction needs:

- exact lookup (``get`` / ``__contains__``),
- *covering* entries — every stored prefix that covers a query prefix,
  most-specific last, which doubles as longest-prefix match, and
- *covered* entries — every stored prefix inside a query prefix, used to
  find the more-specifics of a delegator's block.

The implementation is a plain (non-compressed) binary trie: for the
prefix lengths that dominate our workloads (/16../24) paths are short,
and the simple structure keeps inserts and deletes obviously correct.
"""

from __future__ import annotations

from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.netbase.prefix import ADDRESS_BITS, IPv4Prefix

V = TypeVar("V")

_MISSING = object()


class _Node(Generic[V]):
    """One trie node; ``value`` is ``_MISSING`` when no entry ends here."""

    __slots__ = ("zero", "one", "value")

    def __init__(self) -> None:
        self.zero: Optional["_Node[V]"] = None
        self.one: Optional["_Node[V]"] = None
        self.value: object = _MISSING


class PrefixTrie(Generic[V]):
    """Mutable mapping from :class:`IPv4Prefix` to values.

    >>> trie = PrefixTrie()
    >>> trie[IPv4Prefix.parse("10.0.0.0/8")] = "rfc1918"
    >>> trie.longest_match(IPv4Prefix.parse("10.1.2.0/24"))
    (IPv4Prefix('10.0.0.0/8'), 'rfc1918')
    """

    __slots__ = ("_root", "_size")

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._size = 0

    # -- path helpers --------------------------------------------------

    def _descend(self, prefix: IPv4Prefix, create: bool) -> Optional[_Node[V]]:
        """Walk to the node for ``prefix``, optionally creating the path."""
        node = self._root
        network, length = prefix.network, prefix.length
        for depth in range(length):
            bit = (network >> (ADDRESS_BITS - 1 - depth)) & 1
            child = node.one if bit else node.zero
            if child is None:
                if not create:
                    return None
                child = _Node()
                if bit:
                    node.one = child
                else:
                    node.zero = child
            node = child
        return node

    # -- mutation -------------------------------------------------------

    def insert(self, prefix: IPv4Prefix, value: V) -> None:
        """Insert or replace the entry for ``prefix``."""
        node = self._descend(prefix, create=True)
        assert node is not None
        if node.value is _MISSING:
            self._size += 1
        node.value = value

    def __setitem__(self, prefix: IPv4Prefix, value: V) -> None:
        self.insert(prefix, value)

    def delete(self, prefix: IPv4Prefix) -> bool:
        """Remove the entry for ``prefix``; return True if it existed.

        Empty branches left behind are pruned so long-lived tries (e.g.
        per-day RIB snapshots reusing one trie) do not leak nodes.
        """
        path: List[Tuple[_Node[V], int]] = []
        node = self._root
        network, length = prefix.network, prefix.length
        for depth in range(length):
            bit = (network >> (ADDRESS_BITS - 1 - depth)) & 1
            child = node.one if bit else node.zero
            if child is None:
                return False
            path.append((node, bit))
            node = child
        if node.value is _MISSING:
            return False
        node.value = _MISSING
        self._size -= 1
        # Prune now-empty leaf chain.
        while path and node.value is _MISSING and node.zero is None and node.one is None:
            parent, bit = path.pop()
            if bit:
                parent.one = None
            else:
                parent.zero = None
            node = parent
        return True

    def clear(self) -> None:
        """Drop every entry."""
        self._root = _Node()
        self._size = 0

    # -- exact lookup ----------------------------------------------------

    def get(self, prefix: IPv4Prefix, default: Optional[V] = None) -> Optional[V]:
        """Return the value stored exactly at ``prefix`` or ``default``."""
        node = self._descend(prefix, create=False)
        if node is None or node.value is _MISSING:
            return default
        return node.value  # type: ignore[return-value]

    def __getitem__(self, prefix: IPv4Prefix) -> V:
        node = self._descend(prefix, create=False)
        if node is None or node.value is _MISSING:
            raise KeyError(prefix)
        return node.value  # type: ignore[return-value]

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        node = self._descend(prefix, create=False)
        return node is not None and node.value is not _MISSING

    # -- cover queries ----------------------------------------------------

    def covering(self, prefix: IPv4Prefix) -> Iterator[Tuple[IPv4Prefix, V]]:
        """Yield stored entries that cover ``prefix``, shortest first.

        Includes an exact-match entry (it trivially covers itself).
        """
        node: Optional[_Node[V]] = self._root
        network = prefix.network
        for depth in range(prefix.length + 1):
            if node is None:
                return
            if node.value is not _MISSING:
                covering_net = network & (
                    ((1 << depth) - 1) << (ADDRESS_BITS - depth)
                    if depth
                    else 0
                )
                yield IPv4Prefix(covering_net, depth), node.value  # type: ignore[misc]
            if depth == prefix.length:
                return
            bit = (network >> (ADDRESS_BITS - 1 - depth)) & 1
            node = node.one if bit else node.zero

    def longest_match(
        self, prefix: IPv4Prefix
    ) -> Optional[Tuple[IPv4Prefix, V]]:
        """Return the most-specific stored entry covering ``prefix``."""
        best: Optional[Tuple[IPv4Prefix, V]] = None
        for entry in self.covering(prefix):
            best = entry
        return best

    def covered(self, prefix: IPv4Prefix) -> Iterator[Tuple[IPv4Prefix, V]]:
        """Yield stored entries equal to or inside ``prefix``, sorted."""
        start = self._descend(prefix, create=False)
        if start is None:
            return
        yield from self._walk(start, prefix.network, prefix.length)

    def _walk(
        self, node: _Node[V], network: int, depth: int
    ) -> Iterator[Tuple[IPv4Prefix, V]]:
        """Depth-first walk in address order (0-branch before 1-branch)."""
        stack: List[Tuple[_Node[V], int, int]] = [(node, network, depth)]
        while stack:
            node, network, depth = stack.pop()
            if node.value is not _MISSING:
                yield IPv4Prefix(network, depth), node.value  # type: ignore[misc]
            # Push the 1-branch first so the 0-branch is visited first.
            if node.one is not None:
                bit_value = 1 << (ADDRESS_BITS - 1 - depth)
                stack.append((node.one, network | bit_value, depth + 1))
            if node.zero is not None:
                stack.append((node.zero, network, depth + 1))

    # -- iteration ---------------------------------------------------------

    def items(self) -> Iterator[Tuple[IPv4Prefix, V]]:
        """Iterate all entries in (network, length) order."""
        yield from self._walk(self._root, 0, 0)

    def keys(self) -> Iterator[IPv4Prefix]:
        for prefix, _value in self.items():
            yield prefix

    def values(self) -> Iterator[V]:
        for _prefix, value in self.items():
            yield value

    def __iter__(self) -> Iterator[IPv4Prefix]:
        return self.keys()

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __repr__(self) -> str:
        return f"<PrefixTrie with {self._size} entries>"
