"""Sets of IPv4 prefixes with aggregation and coverage semantics.

A :class:`PrefixSet` answers the two questions the measurement pipelines
keep asking:

- *is this address/prefix inside any block I hold?* (bogon filtering,
  registry holdings, delegation matching), and
- *how many distinct addresses do my blocks cover?* (market-size
  estimation, Fig. 6's delegated-address counts) — computed on the
  aggregated form so overlapping blocks are not double counted.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.netbase.prefix import IPv4Prefix
from repro.netbase.trie import PrefixTrie


def aggregate(prefixes: Iterable[IPv4Prefix]) -> List[IPv4Prefix]:
    """Return the minimal equivalent list of prefixes.

    Removes prefixes covered by others and merges adjacent siblings,
    repeatedly, until a fixed point.  The result is sorted.

    >>> aggregate([IPv4Prefix.parse("10.0.0.0/25"),
    ...            IPv4Prefix.parse("10.0.0.128/25")])
    [IPv4Prefix('10.0.0.0/24')]
    """
    # Sort places covering prefixes immediately before covered ones.
    pending = sorted(set(prefixes))
    result: List[IPv4Prefix] = []
    for prefix in pending:
        if result and result[-1].covers(prefix):
            continue
        result.append(prefix)
        # Merge completed sibling pairs bottom-up.
        while len(result) >= 2:
            a, b = result[-2], result[-1]
            if a.length == b.length and a.length > 0 and a.sibling() == b:
                result[-2:] = [a.supernet()]
            else:
                break
    return result


def address_count(prefixes: Iterable[IPv4Prefix]) -> int:
    """Number of distinct addresses covered by ``prefixes``."""
    return sum(p.num_addresses for p in aggregate(prefixes))


def coverage_fraction(
    covered: Iterable[IPv4Prefix], covering: Iterable[IPv4Prefix]
) -> float:
    """Fraction of the addresses in ``covered`` that fall inside
    ``covering``.

    This is the estimator behind the paper's headline §4 comparison
    ("BGP-delegations cover only ~1.85 % of the RDAP-delegated IPs").
    Returns 0.0 when ``covered`` is empty.
    """
    base = aggregate(covered)
    total = sum(p.num_addresses for p in base)
    if total == 0:
        return 0.0
    other = PrefixSet(covering)
    overlap = 0
    for prefix in base:
        overlap += other.overlap_addresses(prefix)
    return overlap / total


class PrefixSet:
    """A mutable set of IPv4 prefixes.

    Membership (``in``) asks whether an address or prefix is *covered*
    by the set, which is almost always the question measurement code
    needs (e.g. "is this route bogon space?").  Use :meth:`has_exact`
    for literal membership.
    """

    __slots__ = ("_trie",)

    def __init__(self, prefixes: Optional[Iterable[IPv4Prefix]] = None):
        self._trie: PrefixTrie[bool] = PrefixTrie()
        if prefixes is not None:
            for prefix in prefixes:
                self.add(prefix)

    # -- mutation -----------------------------------------------------

    def add(self, prefix: IPv4Prefix) -> None:
        """Add ``prefix`` to the set."""
        self._trie.insert(prefix, True)

    def discard(self, prefix: IPv4Prefix) -> bool:
        """Remove an exact entry; return True if it was present."""
        return self._trie.delete(prefix)

    def update(self, prefixes: Iterable[IPv4Prefix]) -> None:
        """Add every prefix in ``prefixes``."""
        for prefix in prefixes:
            self.add(prefix)

    # -- queries --------------------------------------------------------

    def covers(self, item: "IPv4Prefix | int") -> bool:
        """True if some member covers the given prefix or address."""
        if isinstance(item, IPv4Prefix):
            probe = item
        else:
            probe = IPv4Prefix(int(item), 32)
        return self._trie.longest_match(probe) is not None

    def has_exact(self, prefix: IPv4Prefix) -> bool:
        """True if ``prefix`` itself is a member (not merely covered)."""
        return prefix in self._trie

    def covered_by(self, prefix: IPv4Prefix) -> Iterator[IPv4Prefix]:
        """Yield members equal to or inside ``prefix``."""
        for member, _flag in self._trie.covered(prefix):
            yield member

    def covering(self, prefix: IPv4Prefix) -> Iterator[IPv4Prefix]:
        """Yield members that cover ``prefix``, shortest first."""
        for member, _flag in self._trie.covering(prefix):
            yield member

    def overlap_addresses(self, prefix: IPv4Prefix) -> int:
        """Number of addresses of ``prefix`` covered by this set."""
        if self.covers(prefix):
            # Some member covers the whole block.
            return prefix.num_addresses
        inside = aggregate(self.covered_by(prefix))
        return sum(p.num_addresses for p in inside)

    def aggregated(self) -> List[IPv4Prefix]:
        """The minimal equivalent prefix list, sorted."""
        return aggregate(self)

    def address_count(self) -> int:
        """Number of distinct addresses covered by the set."""
        return address_count(self)

    # -- protocol --------------------------------------------------------

    def __contains__(self, item: "IPv4Prefix | int") -> bool:
        return self.covers(item)

    def __iter__(self) -> Iterator[IPv4Prefix]:
        return self._trie.keys()

    def __len__(self) -> int:
        return len(self._trie)

    def __bool__(self) -> bool:
        return bool(self._trie)

    def __repr__(self) -> str:
        return f"<PrefixSet with {len(self)} prefixes>"
