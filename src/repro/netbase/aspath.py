"""AS-path model with AS_SEQUENCE / AS_SET segments and loop detection.

The route sanitizer in :mod:`repro.bgp.sanitize` implements the paper's
three cleaning rules; two of them ("routes that contain ASes currently
reserved by IANA" and "routes that contain a loop in their AS-PATH")
operate on this representation.  The textual format follows the common
collector convention: space-separated AS numbers, with AS_SET segments
written as ``{1,2,3}``.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.errors import ASPathError
from repro.netbase.asnum import OriginSet, is_reserved_asn, validate_asn


class SegmentType(enum.Enum):
    """BGP path-segment types (RFC 4271 §4.3)."""

    SEQUENCE = "AS_SEQUENCE"
    SET = "AS_SET"


class ASPathSegment:
    """One path segment: an ordered sequence or an unordered set."""

    __slots__ = ("_type", "_asns")

    def __init__(self, segment_type: SegmentType, asns: Iterable[int]):
        members = tuple(validate_asn(asn) for asn in asns)
        if not members:
            raise ASPathError("path segment cannot be empty")
        self._type = segment_type
        self._asns = members

    @property
    def segment_type(self) -> SegmentType:
        return self._type

    @property
    def asns(self) -> Tuple[int, ...]:
        return self._asns

    @property
    def is_set(self) -> bool:
        return self._type is SegmentType.SET

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ASPathSegment):
            return NotImplemented
        if self._type is not other._type:
            return False
        if self.is_set:
            return set(self._asns) == set(other._asns)
        return self._asns == other._asns

    def __hash__(self) -> int:
        if self.is_set:
            return hash((self._type, frozenset(self._asns)))
        return hash((self._type, self._asns))

    def __iter__(self) -> Iterator[int]:
        return iter(self._asns)

    def __len__(self) -> int:
        return len(self._asns)

    def __str__(self) -> str:
        if self.is_set:
            return "{" + ",".join(str(a) for a in self._asns) + "}"
        return " ".join(str(a) for a in self._asns)

    def __repr__(self) -> str:
        return f"<ASPathSegment {self._type.value} {self}>"


class ASPath:
    """A full AS path, e.g. ``ASPath.parse("3356 1299 {64500,64501}")``.

    The path is stored segment-wise so AS_SET semantics survive a
    parse/format round trip.
    """

    __slots__ = ("_segments",)

    def __init__(self, segments: Sequence[ASPathSegment]):
        self._segments: Tuple[ASPathSegment, ...] = tuple(segments)

    # -- construction ----------------------------------------------------

    @classmethod
    def from_asns(cls, asns: Iterable[int]) -> "ASPath":
        """Build a pure AS_SEQUENCE path from AS numbers."""
        asns = list(asns)
        if not asns:
            return cls(())
        return cls((ASPathSegment(SegmentType.SEQUENCE, asns),))

    @classmethod
    def parse(cls, text: str) -> "ASPath":
        """Parse the collector textual form (``"701 3356 {1,2}"``)."""
        segments: List[ASPathSegment] = []
        sequence: List[int] = []
        tokens = text.split()
        for token in tokens:
            if token.startswith("{"):
                if not token.endswith("}"):
                    raise ASPathError(f"unterminated AS_SET in {text!r}")
                if sequence:
                    segments.append(
                        ASPathSegment(SegmentType.SEQUENCE, sequence)
                    )
                    sequence = []
                body = token[1:-1]
                members = [m for m in body.split(",") if m]
                if not members:
                    raise ASPathError(f"empty AS_SET in {text!r}")
                try:
                    segments.append(
                        ASPathSegment(
                            SegmentType.SET, [int(m) for m in members]
                        )
                    )
                except ValueError as exc:
                    raise ASPathError(f"bad AS_SET member in {text!r}") from exc
            else:
                try:
                    sequence.append(int(token))
                except ValueError as exc:
                    raise ASPathError(f"bad AS number {token!r}") from exc
        if sequence:
            segments.append(ASPathSegment(SegmentType.SEQUENCE, sequence))
        return cls(segments)

    # -- accessors -------------------------------------------------------

    @property
    def segments(self) -> Tuple[ASPathSegment, ...]:
        return self._segments

    def asns(self) -> Iterator[int]:
        """Yield every AS number on the path, in order of appearance."""
        for segment in self._segments:
            yield from segment

    def unique_asns(self) -> frozenset:
        """Set of distinct AS numbers on the path."""
        return frozenset(self.asns())

    @property
    def is_empty(self) -> bool:
        return not self._segments

    def origin(self) -> OriginSet:
        """The origin of the announcement: the last path segment.

        A trailing AS_SET yields a non-unique :class:`OriginSet`, which
        the delegation-inference step (iii) will discard.
        """
        if not self._segments:
            raise ASPathError("empty AS path has no origin")
        last = self._segments[-1]
        if last.is_set:
            return OriginSet(last.asns, from_as_set=True)
        return OriginSet.single(last.asns[-1])

    def first_hop(self) -> int:
        """The monitor-adjacent AS (first AS on the path)."""
        if not self._segments:
            raise ASPathError("empty AS path has no first hop")
        first = self._segments[0]
        return first.asns[0]

    # -- sanitization predicates ------------------------------------------

    def has_loop(self) -> bool:
        """True if any AS appears non-consecutively on the path.

        Consecutive repeats are legitimate path prepending and are not
        loops.  Any AS recurring after a different AS intervened is.
        AS_SET members count as single appearances at the set's spot.
        """
        seen = set()
        previous: "int | None" = None
        for segment in self._segments:
            if segment.is_set:
                for asn in set(segment.asns):
                    if asn in seen:
                        return True
                seen.update(segment.asns)
                previous = None
            else:
                for asn in segment.asns:
                    if asn == previous:
                        continue  # prepending
                    if asn in seen:
                        return True
                    seen.add(asn)
                    previous = asn
        return False

    def has_reserved_asn(self) -> bool:
        """True if any AS on the path is IANA-reserved."""
        return any(is_reserved_asn(asn) for asn in self.asns())

    def strip_prepending(self) -> "ASPath":
        """Collapse consecutive duplicate ASes inside sequences."""
        segments: List[ASPathSegment] = []
        for segment in self._segments:
            if segment.is_set:
                segments.append(segment)
                continue
            collapsed: List[int] = []
            for asn in segment.asns:
                if not collapsed or collapsed[-1] != asn:
                    collapsed.append(asn)
            segments.append(ASPathSegment(SegmentType.SEQUENCE, collapsed))
        return ASPath(segments)

    # -- protocol ----------------------------------------------------------

    def __len__(self) -> int:
        """Path length counted the BGP way: AS_SET counts as one hop."""
        length = 0
        for segment in self._segments:
            if segment.is_set:
                length += 1
            else:
                length += len(segment.asns)
        return length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ASPath):
            return NotImplemented
        return self._segments == other._segments

    def __hash__(self) -> int:
        return hash(self._segments)

    def __str__(self) -> str:
        return " ".join(str(segment) for segment in self._segments)

    def __repr__(self) -> str:
        return f"ASPath.parse({str(self)!r})"
