"""Registration Data Access Protocol (RDAP) substrate.

A small but faithful model of the RIR RDAP service surface the paper
uses (§4): IP-network lookups returning JSON with ``handle``,
``startAddress``/``endAddress``, ``type`` (the inetnum status) and —
crucially — ``parentHandle``, which lets the pipeline reconstruct the
delegation hierarchy.  The server applies per-client token-bucket rate
limiting (real RIR endpoints do), and the client paces itself, retries
on 429-equivalents, and counts its queries, mirroring the paper's
"minimize the load on RIPE's RDAP interface" concern.
"""

from repro.rdap.client import RdapClient
from repro.rdap.server import RateLimiter, RdapServer

__all__ = ["RateLimiter", "RdapClient", "RdapServer"]
