"""The RDAP server: RFC 7483-shaped responses over a WHOIS database."""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import RdapNotFoundError, RdapRateLimitError
from repro.netbase.prefix import IPv4Prefix, format_address
from repro.obs.metrics import NULL, MetricsRegistry
from repro.whois.database import WhoisDatabase
from repro.whois.inetnum import InetnumObject


class RateLimiter:
    """A token bucket driven by an explicit clock.

    The simulation supplies monotonically non-decreasing timestamps (in
    seconds); real-time behaviour is a special case where callers pass
    ``time.monotonic()``.  ``capacity`` tokens refill at ``rate`` tokens
    per second.
    """

    def __init__(self, rate: float, capacity: int):
        if rate <= 0 or capacity <= 0:
            raise ValueError("rate and capacity must be positive")
        self._rate = float(rate)
        self._capacity = float(capacity)
        self._tokens = float(capacity)
        self._last_time: Optional[float] = None

    def try_acquire(self, now: float) -> bool:
        """Consume one token at time ``now``; False when exhausted."""
        if self._last_time is not None:
            if now < self._last_time:
                raise ValueError("clock moved backwards")
            self._tokens = min(
                self._capacity,
                self._tokens + (now - self._last_time) * self._rate,
            )
        self._last_time = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def seconds_until_token(self) -> float:
        """How long a client must wait for the next token."""
        if self._tokens >= 1.0:
            return 0.0
        return (1.0 - self._tokens) / self._rate

    @property
    def last_time(self) -> Optional[float]:
        """Timestamp of the last ``try_acquire`` call, if any."""
        return self._last_time

    def refilled_at(self, now: float) -> bool:
        """True when the bucket would be full again at time ``now``.

        A limiter in this state is indistinguishable from a freshly
        constructed one, so evicting it never changes behaviour.
        """
        if self._last_time is None:
            return True
        elapsed = max(0.0, now - self._last_time)
        return self._tokens + elapsed * self._rate >= self._capacity


class RdapServer:
    """Serves RDAP ``ip`` lookups for one RIR's WHOIS database.

    Responses follow the RFC 7483 ``ip network`` object class closely
    enough that parsers written for real endpoints would work:
    ``objectClassName``, ``handle``, ``startAddress``, ``endAddress``,
    ``type``, ``parentHandle``, ``entities``.

    RDAP has no wildcard or range queries — exactly the limitation that
    forces the paper to seed queries from a WHOIS snapshot.
    """

    #: Rate checks between idle-limiter sweeps (amortizes eviction).
    SWEEP_INTERVAL = 256

    def __init__(
        self,
        database: WhoisDatabase,
        *,
        rate_limit_per_second: float = 10.0,
        burst: int = 20,
        max_clients: int = 4096,
        metrics: MetricsRegistry = NULL,
    ):
        if max_clients < 1:
            raise ValueError("max_clients must be positive")
        self._database = database
        self._rate = rate_limit_per_second
        self._burst = burst
        self._max_clients = max_clients
        self._metrics = metrics
        # Insertion order doubles as least-recently-seen order: every
        # rate check re-inserts the client's limiter at the end.
        self._limiters: Dict[str, RateLimiter] = {}
        self._checks_since_sweep = 0
        self.query_count = 0
        self.throttled_count = 0
        self.evicted_count = 0

    @property
    def database(self) -> WhoisDatabase:
        return self._database

    def set_metrics(self, metrics: MetricsRegistry) -> None:
        """Route limiter/query accounting into ``metrics``."""
        self._metrics = metrics

    # -- rate limiting ---------------------------------------------------

    @property
    def live_limiter_count(self) -> int:
        """Per-client limiter entries currently held in memory."""
        return len(self._limiters)

    def _sweep_idle(self, now: float) -> None:
        """Evict limiter entries that no longer carry any state.

        Two passes keep the table bounded without ever penalizing an
        active client:

        - *refilled* entries — buckets that would be full again at
          ``now`` — are dropped outright; recreating one later yields
          an identical limiter, so this eviction is lossless,
        - if the table still exceeds ``max_clients`` (a flood of
          clients all mid-bucket), the least-recently-seen entries are
          dropped.  Those clients restart with a full bucket, trading
          a one-off extra burst for bounded memory.
        """
        refilled = [
            client_id
            for client_id, limiter in self._limiters.items()
            if limiter.refilled_at(now)
        ]
        for client_id in refilled:
            del self._limiters[client_id]
        overflow = len(self._limiters) - self._max_clients
        if overflow > 0:
            for client_id in list(self._limiters)[:overflow]:
                del self._limiters[client_id]
            self.evicted_count += overflow
        self.evicted_count += len(refilled)
        self._metrics.set_gauge(
            "rdap.limiters.live", float(len(self._limiters))
        )

    def check_rate(self, client_id: str, now: float) -> None:
        """Charge one query to ``client_id``'s token bucket at ``now``.

        Raises :class:`~repro.errors.RdapRateLimitError` (with a
        structured ``retry_after_seconds``) when the bucket is empty.
        Every ``SWEEP_INTERVAL`` checks, idle limiter entries are
        evicted so sustained many-client traffic cannot grow the
        per-client table without bound.
        """
        limiter = self._limiters.pop(client_id, None)
        if limiter is None:
            limiter = RateLimiter(self._rate, self._burst)
        # Re-insert at the end: dict order stays last-seen order.
        self._limiters[client_id] = limiter
        acquired = limiter.try_acquire(now)
        # Sweep only after charging this client: its bucket is no
        # longer refilled (a token was just spent at ``now``) and it
        # sits at the recently-seen end, so it can never evict itself.
        self._checks_since_sweep += 1
        if (
            self._checks_since_sweep >= self.SWEEP_INTERVAL
            or len(self._limiters) > self._max_clients
        ):
            self._checks_since_sweep = 0
            self._sweep_idle(now)
        if not acquired:
            self.throttled_count += 1
            self._metrics.inc("rdap.server.throttled")
            retry_after = limiter.seconds_until_token()
            raise RdapRateLimitError(
                f"rate limit exceeded; retry in {retry_after:.2f}s",
                retry_after_seconds=retry_after,
            )

    # Backwards-compatible private alias (pre-serving-layer callers).
    _check_rate = check_rate

    # -- lookups --------------------------------------------------------------

    def lookup_ip(
        self,
        prefix: IPv4Prefix,
        *,
        client_id: str = "anonymous",
        now: float = 0.0,
    ) -> Dict[str, object]:
        """RDAP ``/ip/<prefix>`` lookup.

        Returns the most-specific registered network containing
        ``prefix`` (the behaviour of real endpoints), raising
        :class:`~repro.errors.RdapNotFoundError` when nothing matches
        and :class:`~repro.errors.RdapRateLimitError` when throttled.
        """
        self._check_rate(client_id, now)
        return self.lookup_object(prefix)

    def lookup_object(self, prefix: IPv4Prefix) -> Dict[str, object]:
        """The :meth:`lookup_ip` response, with no rate accounting.

        The serving layer charges its own per-request rate check (one
        per request, shared across frontends) and then answers through
        this method, so socket responses stay byte-identical to the
        in-memory server's.
        """
        self.query_count += 1
        exact = self._database.find_exact_prefix(prefix)
        obj = exact or self._database.most_specific_containing(prefix)
        if obj is None:
            raise RdapNotFoundError(str(prefix))
        return self._render(obj)

    def _render(self, obj: InetnumObject) -> Dict[str, object]:
        parent = self._database.parent_of(obj)
        response: Dict[str, object] = {
            "objectClassName": "ip network",
            "handle": obj.handle,
            "startAddress": format_address(obj.first),
            "endAddress": format_address(obj.last),
            "ipVersion": "v4",
            "name": obj.netname,
            "type": obj.status.value,
            "country": "ZZ",
            "parentHandle": parent.handle if parent is not None else None,
            "entities": [
                {
                    "objectClassName": "entity",
                    "handle": obj.org_handle,
                    "roles": ["registrant"],
                },
                {
                    "objectClassName": "entity",
                    "handle": obj.admin_handle,
                    "roles": ["administrative"],
                },
            ],
            "rdapConformance": ["rdap_level_0"],
        }
        return response

    def __repr__(self) -> str:
        return (
            f"<RdapServer over {self._database!r}, "
            f"{self.query_count} queries served>"
        )
