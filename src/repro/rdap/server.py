"""The RDAP server: RFC 7483-shaped responses over a WHOIS database."""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import RdapNotFoundError, RdapRateLimitError
from repro.netbase.prefix import IPv4Prefix, format_address
from repro.whois.database import WhoisDatabase
from repro.whois.inetnum import InetnumObject


class RateLimiter:
    """A token bucket driven by an explicit clock.

    The simulation supplies monotonically non-decreasing timestamps (in
    seconds); real-time behaviour is a special case where callers pass
    ``time.monotonic()``.  ``capacity`` tokens refill at ``rate`` tokens
    per second.
    """

    def __init__(self, rate: float, capacity: int):
        if rate <= 0 or capacity <= 0:
            raise ValueError("rate and capacity must be positive")
        self._rate = float(rate)
        self._capacity = float(capacity)
        self._tokens = float(capacity)
        self._last_time: Optional[float] = None

    def try_acquire(self, now: float) -> bool:
        """Consume one token at time ``now``; False when exhausted."""
        if self._last_time is not None:
            if now < self._last_time:
                raise ValueError("clock moved backwards")
            self._tokens = min(
                self._capacity,
                self._tokens + (now - self._last_time) * self._rate,
            )
        self._last_time = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def seconds_until_token(self) -> float:
        """How long a client must wait for the next token."""
        if self._tokens >= 1.0:
            return 0.0
        return (1.0 - self._tokens) / self._rate


class RdapServer:
    """Serves RDAP ``ip`` lookups for one RIR's WHOIS database.

    Responses follow the RFC 7483 ``ip network`` object class closely
    enough that parsers written for real endpoints would work:
    ``objectClassName``, ``handle``, ``startAddress``, ``endAddress``,
    ``type``, ``parentHandle``, ``entities``.

    RDAP has no wildcard or range queries — exactly the limitation that
    forces the paper to seed queries from a WHOIS snapshot.
    """

    def __init__(
        self,
        database: WhoisDatabase,
        *,
        rate_limit_per_second: float = 10.0,
        burst: int = 20,
    ):
        self._database = database
        self._rate = rate_limit_per_second
        self._burst = burst
        self._limiters: Dict[str, RateLimiter] = {}
        self.query_count = 0
        self.throttled_count = 0

    @property
    def database(self) -> WhoisDatabase:
        return self._database

    # -- rate limiting ---------------------------------------------------

    def _limiter_for(self, client_id: str) -> RateLimiter:
        limiter = self._limiters.get(client_id)
        if limiter is None:
            limiter = RateLimiter(self._rate, self._burst)
            self._limiters[client_id] = limiter
        return limiter

    def _check_rate(self, client_id: str, now: float) -> None:
        limiter = self._limiter_for(client_id)
        if not limiter.try_acquire(now):
            self.throttled_count += 1
            raise RdapRateLimitError(
                f"rate limit exceeded; retry in "
                f"{limiter.seconds_until_token():.2f}s"
            )

    # -- lookups --------------------------------------------------------------

    def lookup_ip(
        self,
        prefix: IPv4Prefix,
        *,
        client_id: str = "anonymous",
        now: float = 0.0,
    ) -> Dict[str, object]:
        """RDAP ``/ip/<prefix>`` lookup.

        Returns the most-specific registered network containing
        ``prefix`` (the behaviour of real endpoints), raising
        :class:`~repro.errors.RdapNotFoundError` when nothing matches
        and :class:`~repro.errors.RdapRateLimitError` when throttled.
        """
        self._check_rate(client_id, now)
        self.query_count += 1
        exact = self._database.find_exact_prefix(prefix)
        obj = exact or self._database.most_specific_containing(prefix)
        if obj is None:
            raise RdapNotFoundError(str(prefix))
        return self._render(obj)

    def _render(self, obj: InetnumObject) -> Dict[str, object]:
        parent = self._database.parent_of(obj)
        response: Dict[str, object] = {
            "objectClassName": "ip network",
            "handle": obj.handle,
            "startAddress": format_address(obj.first),
            "endAddress": format_address(obj.last),
            "ipVersion": "v4",
            "name": obj.netname,
            "type": obj.status.value,
            "country": "ZZ",
            "parentHandle": parent.handle if parent is not None else None,
            "entities": [
                {
                    "objectClassName": "entity",
                    "handle": obj.org_handle,
                    "roles": ["registrant"],
                },
                {
                    "objectClassName": "entity",
                    "handle": obj.admin_handle,
                    "roles": ["administrative"],
                },
            ],
            "rdapConformance": ["rdap_level_0"],
        }
        return response

    def __repr__(self) -> str:
        return (
            f"<RdapServer over {self._database!r}, "
            f"{self.query_count} queries served>"
        )
