"""A polite RDAP client: pacing, retries, and query accounting.

The measurement pipeline issues one query per candidate ``inetnum``.
Against a rate-limited server the client must pace itself and back off
on throttling; this client does both against a *virtual clock* so the
whole interaction stays deterministic and instant in tests.
"""

from __future__ import annotations

import logging

from typing import Dict, Optional

from repro.errors import (
    RdapError,
    RdapNotFoundError,
    RdapRateLimitError,
    RdapTimeoutError,
)
from repro.ingest.backoff import BackoffPolicy
from repro.netbase.prefix import IPv4Prefix
from repro.obs.metrics import NULL, MetricsRegistry
from repro.rdap.server import RdapServer

logger = logging.getLogger(__name__)


class VirtualClock:
    """A clock the client advances instead of sleeping."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self._now += seconds


class RdapClient:
    """Client for one RDAP server with retry/backoff behaviour.

    Parameters
    ----------
    server:
        The :class:`~repro.rdap.server.RdapServer` to query.
    client_id:
        Identity used by the server's per-client rate limiter.
    pace_seconds:
        Idle time inserted between queries (politeness pacing).
    max_retries:
        Retries after throttling/timeouts before giving up.
    backoff_seconds:
        Initial backoff, doubled per retry up to ``max_backoff_seconds``.
    max_backoff_seconds:
        Cap on a single backoff delay (the uncapped doubling used to
        push the clock out unboundedly on long throttling episodes).
    backoff:
        A full :class:`~repro.ingest.backoff.BackoffPolicy`; overrides
        ``backoff_seconds``/``max_backoff_seconds`` when given.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; receives
        ``rdap.queries`` / ``rdap.throttles`` / ``rdap.retries`` /
        ``rdap.not_found`` alongside the instance counters.
    """

    def __init__(
        self,
        server: RdapServer,
        *,
        client_id: str = "measurement",
        pace_seconds: float = 0.05,
        max_retries: int = 5,
        backoff_seconds: float = 0.5,
        max_backoff_seconds: float = 30.0,
        backoff: Optional[BackoffPolicy] = None,
        clock: Optional[VirtualClock] = None,
        metrics: MetricsRegistry = NULL,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self._server = server
        self._client_id = client_id
        self._pace = pace_seconds
        self._max_retries = max_retries
        self._backoff = backoff or BackoffPolicy(
            initial_seconds=backoff_seconds,
            max_backoff_seconds=max(max_backoff_seconds, backoff_seconds),
        )
        self._clock = clock or VirtualClock()
        self._metrics = metrics
        self.queries_sent = 0
        self.throttle_events = 0
        self.not_found_count = 0

    def set_metrics(self, metrics: MetricsRegistry) -> None:
        """Route query accounting into ``metrics`` (no-op default)."""
        self._metrics = metrics

    @property
    def clock(self) -> VirtualClock:
        return self._clock

    @property
    def backoff_policy(self) -> BackoffPolicy:
        return self._backoff

    def lookup_ip(self, prefix: IPv4Prefix) -> Optional[Dict[str, object]]:
        """Query ``/ip/<prefix>``; None when the server has no object.

        Raises :class:`~repro.errors.RdapError` if throttling or
        timeouts persist past ``max_retries``.  Backoff delays follow
        the capped :class:`~repro.ingest.backoff.BackoffPolicy`.
        """
        for attempt in range(self._max_retries + 1):
            self._clock.sleep(self._pace)
            self.queries_sent += 1
            self._metrics.inc("rdap.queries")
            if attempt > 0:
                self._metrics.inc("rdap.retries")
            try:
                return self._server.lookup_ip(
                    prefix,
                    client_id=self._client_id,
                    now=self._clock.now(),
                )
            except RdapNotFoundError:
                self.not_found_count += 1
                self._metrics.inc("rdap.not_found")
                return None
            except RdapTimeoutError:
                self._metrics.inc("rdap.timeouts")
                delay = self._backoff.delay(attempt, key=str(prefix))
                logger.warning(
                    "timeout querying %s (attempt %d/%d); backing "
                    "off %.2fs", prefix, attempt + 1,
                    self._max_retries + 1, delay,
                )
                if attempt == self._max_retries:
                    break
                self._clock.sleep(delay)
            except RdapRateLimitError as exc:
                self.throttle_events += 1
                self._metrics.inc("rdap.throttles")
                delay = self._backoff.delay(attempt, key=str(prefix))
                # The server's structured hint is authoritative when it
                # asks for *more* patience than the local backoff; a
                # shorter hint never cuts the jittered pacing short,
                # and the policy's cap still bounds the wait (an
                # uncapped hint would stall the clock for hours on a
                # near-empty refill rate).
                if exc.retry_after_seconds is not None:
                    delay = max(delay, min(
                        exc.retry_after_seconds,
                        self._backoff.max_backoff_seconds,
                    ))
                logger.warning(
                    "throttled querying %s (attempt %d/%d); backing "
                    "off %.2fs", prefix, attempt + 1,
                    self._max_retries + 1, delay,
                )
                if attempt == self._max_retries:
                    break
                self._clock.sleep(delay)
        self._metrics.inc("rdap.gave_up")
        raise RdapError(
            f"gave up on {prefix} after {self._max_retries} retries"
        )

    def parent_handle(self, prefix: IPv4Prefix) -> Optional[str]:
        """Convenience: the ``parentHandle`` for ``prefix``, if any."""
        response = self.lookup_ip(prefix)
        if response is None:
            return None
        parent = response.get("parentHandle")
        return str(parent) if parent is not None else None

    def __repr__(self) -> str:
        return (
            f"<RdapClient {self._client_id}: {self.queries_sent} queries, "
            f"{self.throttle_events} throttles>"
        )
