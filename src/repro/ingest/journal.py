"""Append-only journals for resumable sweeps.

The RDAP sweep issues one query per candidate ``inetnum``; against a
throttled endpoint a full sweep takes hours, and a crash used to throw
all completed lookups away.  :class:`SweepJournal` persists each
completed lookup's *outcome* as one JSON line, flushed as soon as it
is recorded, so a restarted sweep replays finished work instead of
re-querying.

Crash tolerance: a process dying mid-write leaves a truncated final
line; loading skips it (that lookup simply reruns).  Failed lookups
are deliberately *not* journaled by the sweep, so a resume retries
them — only definitive outcomes are durable.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterator, Optional, Union

from repro.errors import DatasetError
from repro.obs.metrics import NULL, MetricsRegistry

PathLike = Union[str, pathlib.Path]


class SweepJournal:
    """A durable ``key -> outcome`` map backed by a JSONL file.

    ``outcome`` values are JSON-serializable dicts.  Recording a key
    twice keeps the latest outcome (last line wins on load, matching
    append order).

    ``metrics`` (no-op default) counts ``journal.entries_loaded`` —
    the outcomes a resume starts from — and ``journal.records_appended``
    per durable write, so manifests show how much of a sweep was
    replayed versus re-queried.
    """

    def __init__(self, path: PathLike, *, metrics: MetricsRegistry = NULL):
        self._path = pathlib.Path(path)
        self._entries: Dict[str, dict] = {}
        self._handle = None
        self._metrics = metrics
        self._load()
        if self._entries:
            self._metrics.inc(
                "journal.entries_loaded", len(self._entries)
            )

    def _load(self) -> None:
        if not self._path.exists():
            return
        try:
            text = self._path.read_text(encoding="utf-8")
        except OSError as exc:
            raise DatasetError(
                f"cannot read sweep journal {self._path}: {exc}"
            ) from exc
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                # Truncated final line from a crash mid-write: drop it
                # (the lookup reruns) rather than failing the resume.
                continue
            if (
                isinstance(entry, dict)
                and isinstance(entry.get("key"), str)
                and isinstance(entry.get("outcome"), dict)
            ):
                self._entries[entry["key"]] = entry["outcome"]

    @property
    def path(self) -> pathlib.Path:
        return self._path

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[dict]:
        return self._entries.get(key)

    def keys(self) -> Iterator[str]:
        return iter(self._entries)

    def record(self, key: str, outcome: dict) -> None:
        """Persist one completed lookup (flushed immediately)."""
        if self._handle is None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self._path, "a", encoding="utf-8")
            # A crash mid-write can leave the file without a trailing
            # newline; terminate that partial line so the next record
            # does not glue itself onto it.
            if self._handle.tell() > 0:
                with open(self._path, "rb") as tail:
                    tail.seek(-1, 2)
                    if tail.read(1) != b"\n":
                        self._handle.write("\n")
        self._handle.write(
            json.dumps({"key": key, "outcome": outcome}, sort_keys=True)
            + "\n"
        )
        self._handle.flush()
        self._entries[key] = outcome
        self._metrics.inc("journal.records_appended")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<SweepJournal {self._path} ({len(self._entries)} entries)>"
