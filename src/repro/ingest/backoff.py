"""Capped exponential backoff with deterministic jitter.

Extracted from :class:`~repro.rdap.client.RdapClient`, whose inline
backoff doubled without bound: a long throttling episode pushed the
virtual clock out by hours.  The policy here is shared by everything
that retries (the RDAP client today; any future fetcher), caps the
delay, and — because the whole pipeline runs against a virtual clock —
derives its jitter from a hash instead of a live RNG, so a rerun with
the same seed reproduces the exact same schedule.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff: ``initial * multiplier**attempt``, capped.

    ``jitter_fraction`` shaves up to that fraction off the capped
    delay, deterministically per ``(seed, key, attempt)``; jitter never
    pushes a delay above ``max_backoff_seconds``.
    """

    initial_seconds: float = 0.5
    multiplier: float = 2.0
    max_backoff_seconds: float = 30.0
    jitter_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.initial_seconds < 0:
            raise ValueError("initial_seconds must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")
        if self.max_backoff_seconds < self.initial_seconds:
            raise ValueError(
                "max_backoff_seconds must be at least initial_seconds"
            )
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")

    def delay(self, attempt: int, key: str = "") -> float:
        """Seconds to wait before retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        base = self.initial_seconds * self.multiplier ** attempt
        base = min(base, self.max_backoff_seconds)
        if self.jitter_fraction == 0.0:
            return base
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode("utf-8")
        ).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2.0**64
        return base * (1.0 - self.jitter_fraction * fraction)

    def schedule(self, retries: int, key: str = "") -> list:
        """The full delay sequence for ``retries`` retries."""
        return [self.delay(attempt, key) for attempt in range(retries)]
