"""Quarantine-and-continue error handling for the dataset loaders.

Registry data is messy: transfer feeds carry malformed records, broker
CSVs have unparseable rows, RPSL dumps contain truncated blocks.  A
measurement pipeline must tolerate those records rather than crash on
the first one (the "Primer on IPv4 Scarcity" and "Lost in Space"
experience).  The types here let every record-level parser choose
between the two sane behaviours:

- :attr:`ErrorPolicy.STRICT` — today's fail-fast behaviour (the
  default): the first malformed record raises, outputs stay
  byte-identical to a loader without quarantine support.
- :attr:`ErrorPolicy.QUARANTINE` — malformed records are set aside
  into a :class:`QuarantineReport` (source, record index, reason) and
  parsing continues; the report feeds ``repro.obs`` counters and the
  run manifest's ``degradation`` section.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.metrics import NULL, MetricsRegistry

#: Detailed entries kept per source; counts are always exact.
DEFAULT_MAX_DETAIL = 100


class ErrorPolicy(enum.Enum):
    """How a loader reacts to a malformed record."""

    STRICT = "strict"
    QUARANTINE = "quarantine"

    @classmethod
    def parse(cls, text: str) -> "ErrorPolicy":
        for policy in cls:
            if policy.value == text.strip().lower():
                return policy
        raise ValueError(f"unknown error policy: {text!r}")


@dataclass(frozen=True)
class QuarantinedRecord:
    """One record set aside instead of aborting the run."""

    source: str  #: input path (or label) the record came from
    index: int   #: record index within the source (0-based)
    reason: str  #: one-line parse failure description
    kind: str = "record"  #: coarse category (transfers, scrapes, rpsl, rdap)


class QuarantineReport:
    """Collects quarantined records across one ingestion run.

    Counts are exact; the per-record detail list is capped at
    ``max_detail`` entries per source so a pathological input cannot
    balloon the run manifest.  Every addition also increments the
    ``ingest.quarantined`` / ``ingest.quarantined.<kind>`` counters of
    the attached :class:`~repro.obs.metrics.MetricsRegistry`.
    """

    def __init__(
        self,
        *,
        metrics: MetricsRegistry = NULL,
        max_detail: int = DEFAULT_MAX_DETAIL,
    ) -> None:
        self._records: List[QuarantinedRecord] = []
        self._counts: Dict[str, int] = {}
        self._kind_counts: Dict[str, int] = {}
        self._detail_per_source: Dict[str, int] = {}
        self._metrics = metrics
        self._max_detail = max_detail

    def set_metrics(self, metrics: MetricsRegistry) -> None:
        self._metrics = metrics

    def add(
        self, source: str, index: int, reason: str, *, kind: str = "record"
    ) -> None:
        """Record one quarantined record."""
        self._counts[source] = self._counts.get(source, 0) + 1
        self._kind_counts[kind] = self._kind_counts.get(kind, 0) + 1
        kept = self._detail_per_source.get(source, 0)
        if kept < self._max_detail:
            self._records.append(
                QuarantinedRecord(
                    source=source, index=index, reason=reason, kind=kind
                )
            )
            self._detail_per_source[source] = kept + 1
        self._metrics.inc("ingest.quarantined")
        self._metrics.inc(f"ingest.quarantined.{kind}")

    # -- reading --------------------------------------------------------

    def count(self, source: Optional[str] = None) -> int:
        """Total quarantined records, or the total for one source."""
        if source is not None:
            return self._counts.get(source, 0)
        return sum(self._counts.values())

    def by_source(self) -> Dict[str, int]:
        return dict(self._counts)

    def by_kind(self) -> Dict[str, int]:
        return dict(self._kind_counts)

    def kind_count(self, kind: str) -> int:
        return self._kind_counts.get(kind, 0)

    def records(self) -> List[QuarantinedRecord]:
        """The kept detail entries (capped per source)."""
        return list(self._records)

    def merge(self, other: "QuarantineReport") -> "QuarantineReport":
        """Fold ``other``'s entries into this report; returns self."""
        for record in other._records:
            self.add(
                record.source, record.index, record.reason, kind=record.kind
            )
        for source, count in other._counts.items():
            # Entries beyond other's detail cap carry no kind; count
            # them under the generic "record" kind.
            extra = count - other._detail_per_source.get(source, 0)
            if extra > 0:
                self._counts[source] = self._counts.get(source, 0) + extra
                self._kind_counts["record"] = (
                    self._kind_counts.get("record", 0) + extra
                )
                self._metrics.inc("ingest.quarantined", extra)
        return self

    def __len__(self) -> int:
        return self.count()

    def __bool__(self) -> bool:
        return self.count() > 0

    def to_json(self) -> dict:
        """The manifest ``degradation`` payload."""
        return {
            "quarantined_total": self.count(),
            "by_source": dict(sorted(self._counts.items())),
            "by_kind": dict(sorted(self._kind_counts.items())),
            "records": [
                {
                    "source": r.source,
                    "index": r.index,
                    "kind": r.kind,
                    "reason": r.reason,
                }
                for r in self._records
            ],
        }

    def __repr__(self) -> str:
        return (
            f"<QuarantineReport {self.count()} records from "
            f"{len(self._counts)} sources>"
        )
