"""Fault-tolerant ingestion: error policies, quarantine, backoff, journals.

The datasets the paper ingests (RIR transfer JSON feeds, broker CSVs,
RPSL split files, RDAP responses) are full of malformed records; this
package gives every loader a shared vocabulary for degrading
gracefully instead of failing hard:

- :class:`ErrorPolicy` / :class:`QuarantineReport` — strict (default,
  fail-fast) vs. quarantine-and-continue parsing, with exact drop
  accounting that surfaces through ``repro.obs`` counters and the run
  manifest's ``degradation`` section,
- :class:`BackoffPolicy` — capped exponential backoff with
  deterministic jitter, shared by the RDAP client,
- :class:`SweepJournal` — an append-only JSONL journal that makes the
  RDAP sweep resumable after a crash or throttle-out.
"""

from repro.ingest.backoff import BackoffPolicy
from repro.ingest.journal import SweepJournal
from repro.ingest.quarantine import (
    DEFAULT_MAX_DETAIL,
    ErrorPolicy,
    QuarantinedRecord,
    QuarantineReport,
)

__all__ = [
    "BackoffPolicy",
    "DEFAULT_MAX_DETAIL",
    "ErrorPolicy",
    "QuarantineReport",
    "QuarantinedRecord",
    "SweepJournal",
]
