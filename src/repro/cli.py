"""Command-line interface.

The subcommands cover the library's main entry points::

    python -m repro generate DIR     # materialize every data feed
    python -m repro ingest DIR       # load the feeds back (fault-tolerant)
    python -m repro infer            # run the delegation pipeline
    python -m repro market           # the market report (Figs. 1-4)
    python -m repro figures DIR      # every figure's data as CSV
    python -m repro advise 24 3      # buy-or-lease for a /24, 3 years
    python -m repro manifest m.json  # pretty-print a run manifest

All commands accept ``--seed`` and ``--scale
{small,paper,internet}``; output is plain text on stdout.  ``infer``,
``figures``, ``market``, and ``ingest`` additionally accept the
observability flags:

- ``--metrics-out PATH`` — write a run manifest (config hash, input
  fingerprints, per-stage attrition, cache and timing accounting),
- ``--trace-out PATH`` — write a Chrome trace-event timeline (open in
  Perfetto / ``chrome://tracing``, or summarize with
  ``repro trace summarize PATH``),
- ``--prom-out PATH`` — write the same registry in Prometheus text
  exposition format (counters, gauges, latency histograms),
- ``--profile-mem`` — add per-stage ``tracemalloc`` peak gauges
  (``profile.*`` in the manifest), workers included.

``repro history record/list/diff/check`` turns recorded manifests
into an append-only regression history; ``check`` exits 1 when a
stage timing (mean *or* p99) regresses past ``--max-regress``.
``repro obs top URL`` polls a running ``repro serve`` instance's
``/health`` + ``/metrics`` into a live latency dashboard.

Errors deriving from :class:`~repro.errors.ReproError` (bad flags,
unwritable paths, broken inputs) exit with status 2 and a one-line
message instead of a traceback.
"""

from __future__ import annotations

import argparse
import dataclasses
import datetime
import math
import os
import pathlib
import sys
from typing import List, Optional

from repro.analysis.leasing_prices import summarize_leasing_prices
from repro.analysis.prices import (
    consolidation_quarter,
    doubling_factor,
    mean_price_per_ip,
    regional_price_difference,
)
from repro.analysis.report import render_table
from repro.analysis.transfers import market_start_dates, transfer_counts
from repro.delegation import InferenceConfig
from repro.errors import ReproError
from repro.market.amortization import AmortizationScenario
from repro.market.leasing import FIRST_SCRAPE, SECOND_WAVE
from repro.obs import (
    DEFAULT_HISTORY_PATH,
    NULL,
    MetricsRegistry,
    RunHistory,
    RunManifest,
    TracingRegistry,
    config_hash,
    load_manifest,
    load_trace,
    parse_percent,
    render_diff,
    render_list,
    render_manifest,
    summarize_trace,
)
from repro.obs.history import DEFAULT_MIN_PEAK_KB, DEFAULT_MIN_SECONDS
from repro.registry.rir import RIR
from repro.simulation import (
    World,
    internet_scenario,
    paper_scenario,
    small_scenario,
)


def _build_world(args: argparse.Namespace) -> World:
    if args.scale == "paper":
        return World(paper_scenario(seed=args.seed))
    if args.scale == "internet":
        return World(internet_scenario(seed=args.seed))
    return World(small_scenario(seed=args.seed))


# -- flag validation ------------------------------------------------------


def _check_runner_flags(args: argparse.Namespace) -> None:
    """Fail fast (one line, no traceback) on unusable runner flags."""
    jobs = getattr(args, "jobs", None)
    if jobs is not None and jobs < 1:
        raise ReproError(f"--jobs must be at least 1 (got {jobs})")
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is not None:
        path = pathlib.Path(cache_dir)
        try:
            path.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ReproError(
                f"--cache-dir: cannot create {path}: {exc}"
            ) from exc
        if not os.access(path, os.W_OK):
            raise ReproError(f"--cache-dir: {path} is not writable")
    journal = getattr(args, "journal", None)
    if journal is not None:
        if not getattr(args, "incremental", False):
            raise ReproError("--journal requires --incremental")
        path = pathlib.Path(journal)
        try:
            path.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ReproError(
                f"--journal: cannot create {path}: {exc}"
            ) from exc
        if not os.access(path, os.W_OK):
            raise ReproError(f"--journal: {path} is not writable")
    store = getattr(args, "store", None)
    if store is not None:
        path = pathlib.Path(store)
        try:
            path.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ReproError(
                f"--store: cannot create {path}: {exc}"
            ) from exc
        if not os.access(path, os.W_OK):
            raise ReproError(f"--store: {path} is not writable")
    day_shards = getattr(args, "day_shards", None)
    if day_shards is not None:
        if day_shards < 1:
            raise ReproError(
                f"--day-shards must be at least 1 (got {day_shards})"
            )
        if day_shards > 1 and getattr(args, "kernel", None) == "object":
            raise ReproError(
                "--day-shards requires the columnar kernel"
            )
        if day_shards > 1 and getattr(args, "incremental", False):
            raise ReproError(
                "--day-shards cannot combine with --incremental"
            )
    _check_obs_flags(args)


def _check_out_path(target: Optional[str], flag: str) -> None:
    """Fail fast on an unusable output-file path for ``flag``.

    One validator for every artifact-writing flag (``--metrics-out``,
    ``--trace-out``): directory targets, missing or unwritable
    parents all exit 2 with a one-line message before any work runs.
    """
    if target is None:
        return
    path = pathlib.Path(target)
    if path.is_dir():
        raise ReproError(f"{flag}: {path} is a directory")
    parent = path.parent if str(path.parent) else pathlib.Path(".")
    if not parent.is_dir():
        raise ReproError(f"{flag}: directory {parent} does not exist")
    if not os.access(parent, os.W_OK):
        raise ReproError(f"{flag}: {parent} is not writable")


def _check_obs_flags(args: argparse.Namespace) -> None:
    _check_out_path(getattr(args, "metrics_out", None), "--metrics-out")
    _check_out_path(getattr(args, "trace_out", None), "--trace-out")
    _check_out_path(getattr(args, "prom_out", None), "--prom-out")


def _registry_for(args: argparse.Namespace) -> MetricsRegistry:
    """The registry matching the run's observability flags.

    - no flags → the shared no-op :data:`NULL` registry (byte-identical
      output, ~zero overhead),
    - ``--metrics-out`` / ``--prom-out`` / ``--profile-mem`` → a real
      registry,
    - ``--trace-out`` → a :class:`TracingRegistry` on the ``main``
      lane (worker lanes fan in through the runner),
    - ``--profile-mem`` additionally turns on per-span peak gauges.
    """
    wants_trace = getattr(args, "trace_out", None) is not None
    wants_profile = getattr(args, "profile_mem", False)
    wants_metrics = (
        getattr(args, "metrics_out", None) is not None
        or getattr(args, "prom_out", None) is not None
    )
    if wants_trace:
        registry: MetricsRegistry = TracingRegistry(lane="main")
    elif wants_metrics or wants_profile:
        registry = MetricsRegistry()
    else:
        return NULL
    if wants_profile:
        registry.enable_memory_profile()
    return registry


def _write_trace(args: argparse.Namespace, metrics: MetricsRegistry) -> None:
    """Write the ``--trace-out`` artifact when the flag was given."""
    target = getattr(args, "trace_out", None)
    if target is not None:
        metrics.trace.write(target)


def _write_prom(args: argparse.Namespace, metrics: MetricsRegistry) -> None:
    """Write the ``--prom-out`` artifact when the flag was given."""
    target = getattr(args, "prom_out", None)
    if target is not None:
        from repro.obs.telemetry import write_prometheus

        write_prometheus(metrics, target)


# -- manifest assembly ----------------------------------------------------


def _pipeline_stage_table(
    manifest: RunManifest, metrics: MetricsRegistry
) -> None:
    """The §4 filter chain as attrition rows, from pipeline counters.

    Counts are the deterministic per-filter totals both the sequential
    path and the parallel fan-in record under the same names, so
    ``--jobs N`` never changes this table.
    """
    pairs_seen = metrics.counter("pipeline.pairs_seen")
    bogon = metrics.counter("pipeline.dropped.bogon")
    visibility = metrics.counter("pipeline.dropped.visibility")
    origin = metrics.counter("pipeline.dropped.origin")
    same_org = metrics.counter("pipeline.dropped.same_org")
    delegations = metrics.counter("pipeline.delegations")
    fills = metrics.counter("pipeline.consistency.fills")
    conflicts = metrics.counter("pipeline.consistency.conflicts")
    manifest.add_stage(
        "(i) sanitize", pairs_seen + bogon, pairs_seen,
        dropped={"bogon_prefix": bogon},
    )
    manifest.add_stage(
        "(ii) visibility", pairs_seen, pairs_seen - visibility,
        dropped={"below_threshold": visibility},
    )
    manifest.add_stage(
        "(iii) unique-origin", pairs_seen - visibility,
        pairs_seen - visibility - origin,
        dropped={"moas_or_as_set": origin},
    )
    manifest.add_stage(
        "(iv) same-org", delegations + same_org, delegations,
        dropped={"same_org": same_org},
    )
    manifest.add_stage(
        "(v) consistency", delegations, delegations + fills,
        dropped={"conflicting_gaps": conflicts},
        seconds=(
            metrics.timer("runner.consistency").total_seconds
            or metrics.timer("pipeline.consistency").total_seconds
            or None
        ),
    )


def _write_infer_manifest(
    args: argparse.Namespace,
    command: str,
    config: InferenceConfig,
    factory,
    world: World,
    results,
    metrics: MetricsRegistry,
) -> None:
    manifest = RunManifest(
        command=command,
        config=dataclasses.asdict(config),
        config_digest=config_hash(config),
        metrics=metrics,
    )
    manifest.add_input("stream", factory.fingerprint())
    if config.same_org_filter:
        manifest.add_input("as2org", world.as2org().fingerprint())
    _pipeline_stage_table(manifest, metrics)
    hits = misses = replayed = fastpathed = 0
    incremental = False
    for result in results:
        stats = result.runner_stats
        if stats is not None:
            hits += stats.days_from_cache
            misses += stats.days_computed
            incremental = incremental or stats.incremental
            replayed += stats.days_replayed
            fastpathed += stats.days_fastpathed
    manifest.cache = {"hits": hits, "misses": misses}
    manifest.extra["scale"] = args.scale
    manifest.extra["seed"] = args.seed
    manifest.extra["kernel"] = getattr(args, "kernel", "columnar")
    if incremental:
        manifest.extra["incremental"] = {
            "days_replayed": replayed,
            "days_fastpathed": fastpathed,
        }
    manifest.write(args.metrics_out)


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.datasets import generate_all

    world = _build_world(args)
    manifest = generate_all(
        world,
        args.directory,
        collector_days=args.collector_days,
        include_rpki=not args.no_rpki,
    )
    print(manifest.to_json())
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Load a generated dataset directory back, fault-tolerantly.

    ``--error-policy quarantine`` turns one-bad-record aborts into
    quarantine-and-continue loading; the exact drop accounting lands
    in the report table and, with ``--metrics-out``, in the manifest's
    ``degradation`` section.
    """
    from repro.datasets.loaders import (
        load_leasing_scrapes,
        load_transfer_ledger,
        load_whois_snapshot,
    )
    from repro.ingest import ErrorPolicy, QuarantineReport

    _check_obs_flags(args)
    policy = ErrorPolicy.parse(args.error_policy)
    metrics = _registry_for(args)
    report = QuarantineReport(metrics=metrics)
    base = pathlib.Path(args.directory)
    if not base.is_dir():
        raise ReproError(f"no dataset directory at {base}")

    with metrics.span("ingest.transfers"):
        ledger = load_transfer_ledger(
            base / "transfers", policy=policy, report=report
        )
    with metrics.span("ingest.scrapes"):
        scrapes = load_leasing_scrapes(
            base / "leasing" / "scrapes.csv", policy=policy, report=report
        )
    with metrics.span("ingest.whois"):
        whois = load_whois_snapshot(
            base / "whois" / "ripe.db.inetnum", policy=policy, report=report
        )
    loaded = {
        "transfers": (len(ledger), "transfers"),
        "leasing scrapes": (len(scrapes), "scrapes"),
        "whois inetnums": (len(whois), "rpsl"),
    }
    if metrics.enabled:
        for name, (count, _kind) in loaded.items():
            metrics.inc(f"ingest.loaded.{name.replace(' ', '_')}", count)
    if args.metrics_out is not None:
        manifest = RunManifest(command="ingest", metrics=metrics)
        manifest.extra["directory"] = str(base)
        manifest.extra["error_policy"] = policy.value
        manifest.attach_degradation(report)
        for name, (count, kind) in loaded.items():
            dropped = report.kind_count(kind)
            manifest.add_stage(
                name, count + dropped, count,
                dropped={"quarantined": dropped} if dropped else None,
            )
        manifest.write(args.metrics_out)
    _write_trace(args, metrics)
    _write_prom(args, metrics)
    rows = [[name, count] for name, (count, _kind) in loaded.items()]
    rows.append(["quarantined records", report.count()])
    print(render_table(
        ["source", "records"],
        rows,
        title=f"Ingestion report ({policy.value} mode)",
    ))
    if report:
        detail = [
            [r.source, r.index, r.reason[:60]]
            for r in report.records()[:20]
        ]
        print(render_table(
            ["source", "index", "reason"],
            detail,
            title="quarantined (first 20)",
        ))
    return 0


def _cmd_infer(args: argparse.Namespace) -> int:
    from repro.delegation import WorldStreamFactory, run_inference

    _check_runner_flags(args)
    world = _build_world(args)
    config = (
        InferenceConfig.baseline()
        if args.baseline
        else InferenceConfig.extended()
    )
    as2org = world.as2org() if config.same_org_filter else None
    metrics = _registry_for(args)
    factory = WorldStreamFactory(world.config)
    result = run_inference(
        factory,
        world.config.bgp_start,
        world.config.bgp_end,
        config,
        as2org=as2org,
        step_days=args.step_days,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        metrics=metrics,
        kernel=args.kernel,
        incremental=args.incremental,
        journal_dir=args.journal,
        store_dir=args.store,
        day_shards=args.day_shards,
    )
    if args.metrics_out is not None:
        _write_infer_manifest(
            args, "infer", config, factory, world, [result], metrics
        )
    _write_trace(args, metrics)
    _write_prom(args, metrics)
    rows = [
        [date, count, result.daily.addresses_on(date)]
        for date, count in result.counts_series()
    ]
    if args.tail:
        rows = rows[-args.tail:]
    print(render_table(
        ["date", "delegations", "addresses"],
        rows,
        title=(
            "BGP delegations "
            f"({'baseline' if args.baseline else 'extended'} algorithm)"
        ),
    ))
    return 0


def _cmd_market(args: argparse.Namespace) -> int:
    _check_obs_flags(args)
    world = _build_world(args)
    metrics = _registry_for(args)
    with metrics.span("market.prices"):
        dataset = world.priced_transactions()
        mean_2020 = mean_price_per_ip(
            dataset, datetime.date(2020, 1, 1), datetime.date(2020, 6, 25)
        )
        _h, p_value = regional_price_difference(dataset)
        quarter = consolidation_quarter(dataset)
    with metrics.span("market.transfers"):
        starts = market_start_dates(world.transfer_ledger())
        counts = transfer_counts(world.transfer_ledger())
    with metrics.span("market.leasing"):
        leasing = summarize_leasing_prices(
            world.scrape_log(), FIRST_SCRAPE, SECOND_WAVE
        )
    if metrics.enabled:
        metrics.inc("market.priced_transactions", len(dataset))
        metrics.inc("market.leasing_providers", leasing.provider_count)
    if args.metrics_out is not None:
        manifest = RunManifest(
            command="market",
            config_digest=config_hash(world.config),
            metrics=metrics,
        )
        manifest.add_stage(
            "priced transactions", len(dataset), len(dataset)
        )
        manifest.extra["scale"] = args.scale
        manifest.extra["seed"] = args.seed
        manifest.write(args.metrics_out)
    _write_trace(args, metrics)
    _write_prom(args, metrics)
    rows = [
        ["priced transactions", len(dataset)],
        ["mean 2020 price ($/IP)", f"{mean_2020:.2f}"],
        ["doubling since 2016", f"{doubling_factor(dataset):.2f}x"],
        ["regional difference p-value", f"{p_value:.3f}"],
        ["consolidation starts",
         f"{quarter[0]} Q{quarter[1]}" if quarter else "not detected"],
        ["leasing providers", leasing.provider_count],
        ["leasing range ($/IP/month)",
         f"{leasing.min_price:.2f} - {leasing.max_price:.2f}"],
    ]
    for rir in RIR:
        total = sum(c for _d, c in counts[rir])
        start = starts[rir]
        rows.append([
            f"{rir.display_name} market",
            f"{total} transfers since {start}" if start else "negligible",
        ])
    print(render_table(["metric", "value"], rows, title="Market report"))
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    world = _build_world(args)
    today = datetime.date(2020, 6, 1)
    buy_price = mean_price_per_ip(
        world.priced_transactions(),
        datetime.date(2020, 1, 1),
        datetime.date(2020, 6, 25),
    )
    rows = []
    for provider in world.leasing_providers():
        lease = provider.advertised_price(today)
        if lease is None:
            continue
        scenario = AmortizationScenario(
            rir=RIR.RIPE,
            block_length=args.prefix_length,
            buy_price_per_ip=buy_price,
            lease_price_per_ip_month=lease,
        )
        months = scenario.months()
        verdict = (
            "buy"
            if math.isfinite(months) and months <= args.horizon_years * 12
            else "lease"
        )
        rows.append([
            provider.name,
            f"{lease:.2f}",
            "never" if math.isinf(months) else f"{months / 12:.1f}y",
            verdict,
        ])
    rows.sort(key=lambda r: float(r[1]))
    print(render_table(
        ["provider", "$/IP/mo", "break-even", "verdict"],
        rows,
        title=(
            f"Buy (${buy_price:.2f}/IP) or lease a /{args.prefix_length} "
            f"over {args.horizon_years:g} years?"
        ),
    ))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.analysis.fig_data import (
        export_fig1_prices,
        export_fig2_transfers,
        export_fig4_leasing,
        export_fig5_rules,
        export_fig6_runner_stats,
        export_fig6_series,
    )
    from repro.delegation import (
        WorldStreamFactory,
        evaluate_rules_on_rpki,
        run_inference,
    )

    _check_runner_flags(args)
    world = _build_world(args)
    metrics = _registry_for(args)
    base = pathlib.Path(args.directory)
    written = [
        export_fig1_prices(
            world.priced_transactions(), base / "fig1.csv",
            metrics=metrics,
        ),
        export_fig2_transfers(
            world.transfer_ledger(), base / "fig2.csv", metrics=metrics
        ),
        export_fig4_leasing(
            world.scrape_log(), FIRST_SCRAPE, SECOND_WAVE,
            base / "fig4.csv", metrics=metrics,
        ),
        export_fig5_rules(
            evaluate_rules_on_rpki(
                world.rpki(), (2, 5, 10, 20, 30, 50, 70, 90), (0, 1, 2, 3),
                jobs=args.jobs or 0,
            ),
            base / "fig5.csv", metrics=metrics,
        ),
    ]
    results = []
    if not args.skip_fig6:
        factory = WorldStreamFactory(world.config)
        extended = run_inference(
            factory, world.config.bgp_start, world.config.bgp_end,
            InferenceConfig.extended(), as2org=world.as2org(),
            jobs=args.jobs, cache_dir=args.cache_dir, metrics=metrics,
            kernel=args.kernel, incremental=args.incremental,
            journal_dir=args.journal, store_dir=args.store,
            day_shards=args.day_shards,
        )
        baseline = run_inference(
            factory, world.config.bgp_start, world.config.bgp_end,
            InferenceConfig.baseline(),
            jobs=args.jobs, cache_dir=args.cache_dir, metrics=metrics,
            kernel=args.kernel, incremental=args.incremental,
            journal_dir=args.journal, store_dir=args.store,
            day_shards=args.day_shards,
        )
        results = [extended, baseline]
        written.append(
            export_fig6_series(
                extended, baseline, base / "fig6.csv", metrics=metrics
            )
        )
        written.append(
            export_fig6_runner_stats(
                {"extended": extended, "baseline": baseline},
                base / "fig6_runner.csv", metrics=metrics,
            )
        )
    if args.metrics_out is not None:
        # One registry audits the whole export: the pipeline counters
        # sum the extended and baseline inference runs.
        manifest = RunManifest(
            command="figures",
            config_digest=config_hash(world.config),
            metrics=metrics,
        )
        manifest.add_input(
            "stream", WorldStreamFactory(world.config).fingerprint()
        )
        hits = misses = 0
        for result in results:
            stats = result.runner_stats
            if stats is not None:
                hits += stats.days_from_cache
                misses += stats.days_computed
        manifest.cache = {"hits": hits, "misses": misses}
        manifest.extra["scale"] = args.scale
        manifest.extra["seed"] = args.seed
        manifest.extra["kernel"] = args.kernel
        manifest.extra["files_written"] = written
        manifest.write(args.metrics_out)
    _write_trace(args, metrics)
    _write_prom(args, metrics)
    for path in written:
        print(path)
    return 0


def _check_serve_flags(args: argparse.Namespace) -> None:
    """Fail fast (exit 2, one line) on unusable serving flags."""
    _check_runner_flags(args)
    _check_out_path(getattr(args, "ready_file", None), "--ready-file")
    for flag, value in (
        ("--whois-port", args.whois_port), ("--http-port", args.http_port)
    ):
        if not 0 <= value <= 65535:
            raise ReproError(f"{flag}: {value} is not a valid port")
    if args.rate_limit <= 0:
        raise ReproError(
            f"--rate-limit must be positive (got {args.rate_limit:g})"
        )
    if args.burst < 1:
        raise ReproError(f"--burst must be at least 1 (got {args.burst})")
    if args.max_clients < 1:
        raise ReproError(
            f"--max-clients must be at least 1 (got {args.max_clients})"
        )
    if args.serve_seconds is not None and args.serve_seconds < 0:
        raise ReproError(
            f"--serve-seconds must be non-negative "
            f"(got {args.serve_seconds:g})"
        )
    if args.drain_grace < 0:
        raise ReproError(
            f"--drain-grace must be non-negative (got {args.drain_grace:g})"
        )


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve`` — the always-on query serving layer.

    Loads the WHOIS database, the inferred delegation set, the
    transfer ledger, and the market statistics into memory, then
    serves them over the WHOIS line protocol and the HTTP/JSON API
    until SIGINT/SIGTERM (or ``--serve-seconds``) triggers a graceful
    drain.
    """
    from repro.serve import QueryEngine, ReproServeServer, run_server

    _check_serve_flags(args)
    world = _build_world(args)
    metrics = _registry_for(args)
    if not metrics.enabled:
        # A server always keeps real metrics even without --metrics-out:
        # /metrics, the /health window, and `repro obs top` would be
        # empty otherwise, and the differential guarantee only concerns
        # batch artifacts, not a long-running server.
        metrics = MetricsRegistry()
    with metrics.span("serve.load"):
        engine = QueryEngine.from_world(
            world,
            include_inference=not args.no_infer,
            step_days=args.step_days,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            kernel=args.kernel,
            incremental=args.incremental,
            journal_dir=args.journal,
            store_dir=args.store,
            day_shards=args.day_shards,
            rate_limit_per_second=args.rate_limit,
            burst=args.burst,
            max_clients=args.max_clients,
            metrics=metrics,
        )
    server = ReproServeServer(
        engine,
        host=args.host,
        whois_port=args.whois_port,
        http_port=args.http_port,
        drain_grace=args.drain_grace,
    )

    def _banner(ready: ReproServeServer) -> None:
        loaded = engine.loaded_summary()
        print(render_table(
            ["frontend", "endpoint"],
            [
                ["whois", f"{ready.host}:{ready.whois_port}"],
                ["http", f"http://{ready.host}:{ready.http_port}"],
            ],
            title=(
                f"repro serve — {loaded['inetnums']} inetnums, "
                f"{loaded['delegations']} delegations, "
                f"{loaded['transfers']} transfers loaded"
            ),
        ), flush=True)

    run_server(
        server,
        serve_seconds=args.serve_seconds,
        ready_path=args.ready_file,
        on_ready=_banner,
    )
    if args.metrics_out is not None:
        manifest = RunManifest(
            command="serve",
            config_digest=config_hash(world.config),
            metrics=metrics,
        )
        manifest.extra["scale"] = args.scale
        manifest.extra["seed"] = args.seed
        manifest.extra["serve"] = server.health()
        manifest.write(args.metrics_out)
    _write_trace(args, metrics)
    _write_prom(args, metrics)
    health = server.health()
    print(render_table(
        ["metric", "value"],
        [
            ["uptime", f"{health['uptimeSeconds']:.1f}s"],
            ["connections", health["connections"]["total"]],
            ["whois queries", health["queries"]["whois"]],
            ["http requests", health["queries"]["http"]],
            ["throttled", health["queries"]["throttled"]],
            ["limiters evicted", health["limiters"]["evicted"]],
        ],
        title="Serving session summary",
    ))
    return 0


def _cmd_manifest(args: argparse.Namespace) -> int:
    print(render_manifest(load_manifest(args.path)))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace summarize PATH`` — offline trace analysis."""
    if args.trace_command == "summarize":
        print(summarize_trace(load_trace(args.path), top=args.top))
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """``repro obs top URL`` — live dashboard over a running server."""
    from repro.obs.top import run_top

    if args.obs_command == "top":
        return run_top(
            args.target,
            interval=args.interval,
            count=args.count,
            clear=not args.no_clear,
        )
    return 2  # pragma: no cover - argparse enforces the choices


def _cmd_history(args: argparse.Namespace) -> int:
    """``repro history record/list/diff/check`` — cross-run tracking."""
    sub = args.history_command
    if sub == "record":
        # The only subcommand that writes the store: validate the
        # target like every other artifact-writing flag.
        _check_out_path(args.history, "--history")
    history = RunHistory(args.history)
    if sub == "record":
        entry = history.record(load_manifest(args.manifest))
        digest = (entry.get("config_hash") or "")[:12] or "-"
        print(
            f"recorded run {entry['id']} "
            f"({entry['command']}, config {digest}) in {history.path}"
        )
        return 0
    if sub == "list":
        print(render_list(history.entries()))
        return 0
    if sub == "diff":
        print(history.diff(args.baseline, args.candidate))
        return 0
    # check: exit 1 when the candidate regressed past --max-regress.
    regressions = history.check(
        args.baseline,
        args.candidate,
        max_regress=parse_percent(args.max_regress),
        min_seconds=args.min_seconds,
        min_peak_kb=args.min_peak_kb,
    )
    if not regressions:
        print("history check: no regressions")
        return 0
    print(f"history check: {len(regressions)} regression(s)")
    for line in regressions:
        print(f"  - {line}")
    return 1


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared flags for commands that run the inference pipeline."""
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="inference worker processes (default: one per CPU core)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache per-day inference results under DIR; re-runs with "
             "an unchanged configuration become near-instant",
    )
    parser.add_argument(
        "--kernel", choices=("columnar", "object"), default="columnar",
        help="per-day inference implementation: 'columnar' packed "
             "arrays (fast, default) or the 'object' trie reference "
             "path; both produce byte-identical results",
    )
    parser.add_argument(
        "--incremental", action="store_true",
        help="day-over-day delta inference: seed from the first day, "
             "apply per-day deltas instead of re-running the full "
             "kernel; output is byte-identical to a full sweep",
    )
    parser.add_argument(
        "--journal", default=None, metavar="DIR",
        help="journal incremental sweeps as NRTM-style delta entries "
             "under DIR; re-runs replay the journal and longer "
             "windows extend it (requires --incremental)",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="keep per-day pair tables as memory-mapped shard files "
             "under DIR (the out-of-core data plane); warm days are "
             "zero-copy maps shared by every config, kernel, and "
             "worker process",
    )
    parser.add_argument(
        "--day-shards", type=int, default=1, metavar="K",
        help="split each computed day into K per-/8 sub-tasks so one "
             "heavy day saturates the worker pool (columnar kernel "
             "only; output is byte-identical for any K)",
    )
    _add_obs_arguments(parser)


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """The observability flag trio, shared by every pipeline command."""
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write a run manifest (config hash, input fingerprints, "
             "per-stage attrition, cache and timing accounting) as "
             "JSON to PATH; inspect it with `repro manifest PATH`",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Chrome trace-event timeline (all spans, worker "
             "lanes included) to PATH; open in Perfetto or summarize "
             "with `repro trace summarize PATH`",
    )
    parser.add_argument(
        "--prom-out", default=None, metavar="PATH",
        help="write the metrics registry (counters, gauges, latency "
             "histograms) as Prometheus text exposition to PATH",
    )
    parser.add_argument(
        "--profile-mem", action="store_true",
        help="track tracemalloc peak memory per stage; peaks appear "
             "as profile.* gauges in the --metrics-out manifest",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'When Wells Run Dry: the 2020 IPv4 "
            "address market' (CoNEXT 2020)"
        ),
    )
    parser.add_argument("--seed", type=int, default=42,
                        help="world seed (default 42)")
    parser.add_argument("--scale", choices=("small", "paper", "internet"),
                        default="small",
                        help="scenario preset (default small); "
                             "'internet' scales the paper's prefix "
                             "counts ~15x for out-of-core runs")
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="materialize every data feed into a directory"
    )
    generate.add_argument("directory")
    generate.add_argument("--collector-days", type=int, default=3)
    generate.add_argument("--no-rpki", action="store_true",
                          help="skip the (large) daily ROA snapshots")
    generate.set_defaults(handler=_cmd_generate)

    ingest = commands.add_parser(
        "ingest",
        help="load a generated dataset directory back "
             "(quarantine-and-continue with --error-policy quarantine)",
    )
    ingest.add_argument("directory")
    ingest.add_argument(
        "--error-policy", choices=("strict", "quarantine"),
        default="strict",
        help="strict: first malformed record aborts (default); "
             "quarantine: set bad records aside and keep loading",
    )
    _add_obs_arguments(ingest)
    ingest.set_defaults(handler=_cmd_ingest)

    infer = commands.add_parser(
        "infer", help="run the delegation-inference pipeline"
    )
    infer.add_argument("--baseline", action="store_true",
                       help="previously proposed algorithm (no extensions)")
    infer.add_argument("--step-days", type=int, default=1)
    infer.add_argument("--tail", type=int, default=10,
                       help="show only the last N days (default 10)")
    _add_runner_arguments(infer)
    infer.set_defaults(handler=_cmd_infer)

    market = commands.add_parser("market", help="print the market report")
    _add_obs_arguments(market)
    market.set_defaults(handler=_cmd_market)

    manifest = commands.add_parser(
        "manifest", help="pretty-print a --metrics-out run manifest"
    )
    manifest.add_argument("path")
    manifest.set_defaults(handler=_cmd_manifest)

    figures = commands.add_parser(
        "figures", help="export every figure's data series as CSV"
    )
    figures.add_argument("directory")
    figures.add_argument("--skip-fig6", action="store_true",
                         help="skip the (slow) full inference run")
    _add_runner_arguments(figures)
    figures.set_defaults(handler=_cmd_figures)

    serve = commands.add_parser(
        "serve",
        help="always-on query server: whois line protocol + "
             "HTTP/JSON API over the loaded delegation/transfer state",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument(
        "--whois-port", type=int, default=4343, metavar="PORT",
        help="whois line-protocol port; 0 picks an ephemeral port "
             "(default 4343)",
    )
    serve.add_argument(
        "--http-port", type=int, default=8080, metavar="PORT",
        help="HTTP/JSON API port; 0 picks an ephemeral port "
             "(default 8080)",
    )
    serve.add_argument(
        "--rate-limit", type=float, default=50.0, metavar="QPS",
        help="per-client sustained query rate (default 50/s)",
    )
    serve.add_argument(
        "--burst", type=int, default=100, metavar="N",
        help="per-client token-bucket burst capacity (default 100)",
    )
    serve.add_argument(
        "--max-clients", type=int, default=4096, metavar="N",
        help="rate-limiter table bound; least-recently-seen idle "
             "clients are evicted past this (default 4096)",
    )
    serve.add_argument(
        "--no-infer", action="store_true",
        help="serve the whois database only; skip delegation "
             "inference (faster startup, /delegations answers empty)",
    )
    serve.add_argument(
        "--step-days", type=int, default=1,
        help="inference snapshot stride in days (default 1)",
    )
    serve.add_argument(
        "--serve-seconds", type=float, default=None, metavar="S",
        help="shut down gracefully after S seconds (default: run "
             "until SIGINT/SIGTERM)",
    )
    serve.add_argument(
        "--drain-grace", type=float, default=5.0, metavar="S",
        help="seconds to wait for in-flight queries on shutdown "
             "before cancelling them (default 5)",
    )
    serve.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="write '<host> <whois_port> <http_port>' to PATH once "
             "both listeners are bound (for scripts and CI)",
    )
    _add_runner_arguments(serve)
    serve.set_defaults(handler=_cmd_serve)

    advise = commands.add_parser(
        "advise", help="buy-or-lease comparison for a block size"
    )
    advise.add_argument("prefix_length", type=int, nargs="?", default=24)
    advise.add_argument("horizon_years", type=float, nargs="?", default=3.0)
    advise.set_defaults(handler=_cmd_advise)

    trace = commands.add_parser(
        "trace", help="analyze a --trace-out timeline offline"
    )
    trace_commands = trace.add_subparsers(
        dest="trace_command", required=True
    )
    summarize = trace_commands.add_parser(
        "summarize",
        help="critical path, per-lane utilization, slowest spans",
    )
    summarize.add_argument("path")
    summarize.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="how many slowest spans to show (default 10)",
    )
    trace.set_defaults(handler=_cmd_trace)

    obs = commands.add_parser(
        "obs", help="live observability tools for a running server"
    )
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)
    top = obs_commands.add_parser(
        "top",
        help="poll /health and /metrics into a live latency dashboard",
    )
    top.add_argument(
        "target",
        help="the server's HTTP endpoint: host:port or http://host:port",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="seconds between polls (default 2)",
    )
    top.add_argument(
        "--count", type=int, default=None, metavar="N",
        help="render N frames then exit (default: poll until Ctrl-C)",
    )
    top.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of clearing the screen (for logs)",
    )
    obs.set_defaults(handler=_cmd_obs)

    history = commands.add_parser(
        "history",
        help="record manifests into an append-only run history and "
             "diff / regression-check runs against each other",
    )
    history.add_argument(
        "--history", default=DEFAULT_HISTORY_PATH, metavar="PATH",
        help=f"history store (default {DEFAULT_HISTORY_PATH})",
    )
    history_commands = history.add_subparsers(
        dest="history_command", required=True
    )
    record = history_commands.add_parser(
        "record", help="append one --metrics-out manifest as a run"
    )
    record.add_argument("manifest", help="manifest JSON to record")
    history_commands.add_parser(
        "list", help="show every recorded run"
    )
    diff = history_commands.add_parser(
        "diff", help="compare two recorded runs"
    )
    diff.add_argument("baseline", type=int, help="baseline run id")
    diff.add_argument("candidate", type=int, help="candidate run id")
    check = history_commands.add_parser(
        "check",
        help="exit 1 if the candidate regressed past --max-regress",
    )
    check.add_argument(
        "--baseline", type=int, required=True, metavar="ID",
        help="baseline run id",
    )
    check.add_argument(
        "--candidate", type=int, default=None, metavar="ID",
        help="candidate run id (default: the latest run)",
    )
    check.add_argument(
        "--max-regress", default="20%", metavar="PCT",
        help="tolerated timing slowdown, e.g. '20%%' or 0.2 "
             "(default 20%%)",
    )
    check.add_argument(
        "--min-seconds", type=float, default=DEFAULT_MIN_SECONDS,
        metavar="S",
        help="ignore timers faster than S seconds in the baseline "
             f"(default {DEFAULT_MIN_SECONDS})",
    )
    check.add_argument(
        "--min-peak-kb", type=float, default=DEFAULT_MIN_PEAK_KB,
        metavar="KB",
        help="ignore profile.*.peak_kb gauges below KB in the "
             f"baseline (default {DEFAULT_MIN_PEAK_KB:.0f})",
    )
    history.set_defaults(handler=_cmd_history)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed stdout (e.g. `repro market | head`): die
        # quietly like a well-behaved filter. Point stdout at devnull
        # so interpreter shutdown doesn't raise while flushing.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141
    except OSError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
