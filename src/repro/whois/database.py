"""The WHOIS database: object store with hierarchy queries.

Stores ``inetnum`` and ``organisation`` objects and answers the
hierarchy question the RDAP pipeline needs: *which stored object is the
immediate parent of this range?*  Parenthood follows registry
convention — the smallest strictly-containing range wins.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ObjectNotFoundError, WhoisError
from repro.netbase.prefix import IPv4Prefix
from repro.netbase.trie import PrefixTrie
from repro.whois.inetnum import InetnumObject, InetnumStatus, OrgObject


class WhoisDatabase:
    """In-memory WHOIS database for one RIR region."""

    def __init__(self, source: str = "RIPE"):
        self._source = source
        self._inetnums: Dict[Tuple[int, int], InetnumObject] = {}
        self._orgs: Dict[str, OrgObject] = {}
        # Trie of lists: several non-aligned ranges can share a primary
        # prefix.
        self._index: PrefixTrie[List[InetnumObject]] = PrefixTrie()

    @property
    def source(self) -> str:
        return self._source

    # -- organisations ----------------------------------------------------

    def add_org(self, org: OrgObject) -> None:
        if org.handle in self._orgs:
            raise WhoisError(f"duplicate organisation: {org.handle}")
        self._orgs[org.handle] = org

    def org(self, handle: str) -> OrgObject:
        try:
            return self._orgs[handle]
        except KeyError:
            raise ObjectNotFoundError(handle) from None

    def orgs(self) -> List[OrgObject]:
        return sorted(self._orgs.values(), key=lambda o: o.handle)

    # -- inetnums ------------------------------------------------------------

    def add_inetnum(self, obj: InetnumObject) -> None:
        """Insert an ``inetnum``; exact-range duplicates are rejected."""
        key = obj.key()
        if key in self._inetnums:
            raise WhoisError(f"duplicate inetnum: {obj.range_text()}")
        self._inetnums[key] = obj
        primary = obj.primary_prefix()
        bucket = self._index.get(primary)
        if bucket is None:
            bucket = []
            self._index.insert(primary, bucket)
        bucket.append(obj)

    def remove_inetnum(self, obj: InetnumObject) -> None:
        key = obj.key()
        if key not in self._inetnums:
            raise ObjectNotFoundError(obj.range_text())
        del self._inetnums[key]
        primary = obj.primary_prefix()
        bucket = self._index.get(primary)
        if bucket is not None:
            bucket.remove(obj)
            if not bucket:
                self._index.delete(primary)

    def inetnum(self, first: int, last: int) -> InetnumObject:
        try:
            return self._inetnums[(first, last)]
        except KeyError:
            raise ObjectNotFoundError(f"{first}-{last}") from None

    def inetnums(self) -> Iterator[InetnumObject]:
        """All inetnums, range-sorted (outermost first on ties)."""
        yield from sorted(
            self._inetnums.values(), key=lambda o: (o.first, -o.last)
        )

    def by_status(self, status: InetnumStatus) -> List[InetnumObject]:
        """All inetnums with the given ``status:`` value."""
        return [obj for obj in self.inetnums() if obj.status is status]

    def __len__(self) -> int:
        return len(self._inetnums)

    def __contains__(self, obj: InetnumObject) -> bool:
        return obj.key() in self._inetnums

    # -- hierarchy ---------------------------------------------------------------

    def parent_of(self, obj: InetnumObject) -> Optional[InetnumObject]:
        """The immediate parent: smallest strictly-containing range."""
        best: Optional[InetnumObject] = None
        for _prefix, bucket in self._index.covering(obj.primary_prefix()):
            for candidate in bucket:
                if not candidate.properly_contains(obj):
                    continue
                if best is None or best.contains(candidate):
                    best = candidate
        return best

    def children_of(self, obj: InetnumObject) -> List[InetnumObject]:
        """Immediate children of ``obj`` (ranges directly below it)."""
        children: List[InetnumObject] = []
        for _prefix, bucket in self._index.covered(obj.primary_prefix()):
            for candidate in bucket:
                if candidate is obj or not obj.properly_contains(candidate):
                    continue
                children.append(candidate)
        # Keep only those whose immediate parent is obj.
        return [
            child for child in children if self.parent_of(child) == obj
        ]

    def find_exact_prefix(self, prefix: IPv4Prefix) -> Optional[InetnumObject]:
        """The inetnum whose range equals ``prefix``, if any."""
        return self._inetnums.get((prefix.network, prefix.broadcast))

    def most_specific_containing(
        self, prefix: IPv4Prefix
    ) -> Optional[InetnumObject]:
        """Smallest inetnum whose range covers all of ``prefix``."""
        best: Optional[InetnumObject] = None
        for _stored, bucket in self._index.covering(prefix):
            for candidate in bucket:
                if not (
                    candidate.first <= prefix.network
                    and prefix.broadcast <= candidate.last
                ):
                    continue
                if best is None or best.contains(candidate):
                    best = candidate
        return best

    def __repr__(self) -> str:
        return (
            f"<WhoisDatabase {self._source}: {len(self._inetnums)} inetnums, "
            f"{len(self._orgs)} orgs>"
        )
