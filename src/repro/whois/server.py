"""A WHOIS query server (port-43 semantics).

RDAP is "designed to eventually replace the WHOIS protocol" (§4); the
paper uses both a WHOIS snapshot and the RDAP interface.  This server
completes the pair: classic WHOIS query semantics over the same
database, with the RIPE-style flags that matter for hierarchy walks:

- bare query — most-specific object containing the queried range,
- ``-L`` — all less-specific objects (the containment chain),
- ``-m`` — one-level more-specific objects,
- ``-x`` — exact match only.

Responses are RPSL text, like a real whois client would print.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import WhoisError
from repro.netbase.prefix import IPv4Prefix, parse_address
from repro.whois.database import WhoisDatabase
from repro.whois.inetnum import InetnumObject
from repro.whois.snapshot import render_snapshot

_ERROR_NO_MATCH = "%ERROR:101: no entries found"
_ERROR_SYNTAX = "%ERROR:108: bad syntax"


def _parse_query(query: str) -> Tuple[List[str], Optional[IPv4Prefix]]:
    """Split a query line into (flags, target prefix)."""
    flags: List[str] = []
    target_text: Optional[str] = None
    for token in query.split():
        if token.startswith("-"):
            flags.append(token)
        elif target_text is None:
            target_text = token
        else:
            raise WhoisError("multiple search terms")
    if target_text is None:
        raise WhoisError("missing search term")
    if "/" in target_text:
        prefix = IPv4Prefix.parse(target_text, strict=False)
    else:
        prefix = IPv4Prefix(parse_address(target_text), 32)
    return flags, prefix


class WhoisServer:
    """Serves WHOIS text queries over a :class:`WhoisDatabase`."""

    def __init__(self, database: WhoisDatabase):
        self._database = database
        self.query_count = 0

    @property
    def database(self) -> WhoisDatabase:
        return self._database

    # -- query handling -----------------------------------------------

    def query(self, line: str) -> str:
        """Answer one query line with an RPSL text response."""
        self.query_count += 1
        try:
            flags, prefix = _parse_query(line)
        except (WhoisError, Exception) as exc:  # noqa: BLE001 - protocol edge
            if isinstance(exc, (WhoisError, ValueError)):
                return _ERROR_SYNTAX
            raise
        objects = self._resolve(flags, prefix)
        if not objects:
            return _ERROR_NO_MATCH
        return render_snapshot(objects).rstrip("\n")

    def _resolve(
        self, flags: List[str], prefix: IPv4Prefix
    ) -> List[InetnumObject]:
        exact = self._database.find_exact_prefix(prefix)
        if "-x" in flags:
            return [exact] if exact is not None else []
        best = exact or self._database.most_specific_containing(prefix)
        if best is None:
            return []
        if "-L" in flags:
            chain: List[InetnumObject] = [best]
            current = best
            while True:
                parent = self._database.parent_of(current)
                if parent is None:
                    break
                chain.append(parent)
                current = parent
            # Outermost first, like RIPE's whois output.
            return list(reversed(chain))
        if "-m" in flags:
            return self._database.children_of(best)
        return [best]

    def __repr__(self) -> str:
        return (
            f"<WhoisServer over {self._database!r}, "
            f"{self.query_count} queries served>"
        )
