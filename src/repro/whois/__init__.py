"""WHOIS database substrate (RIPE-style).

Models the slice of the RIPE database the paper uses (§4):

- ``inetnum`` objects with the delegation-relevant status taxonomy
  (``ALLOCATED PA``, ``ASSIGNED PA``, ``SUB-ALLOCATED PA``, ...),
- ``organisation`` objects for registrant/admin matching (the paper's
  intra-organization filter compares registrant and admin handles),
- split-file snapshot dumps mirroring ``ftp.ripe.net/ripe/dbase/split``.
"""

from repro.whois.database import WhoisDatabase
from repro.whois.inetnum import InetnumObject, InetnumStatus, OrgObject
from repro.whois.server import WhoisServer
from repro.whois.snapshot import (
    parse_snapshot,
    read_snapshot_file,
    render_snapshot,
    write_snapshot_file,
)

__all__ = [
    "InetnumObject",
    "InetnumStatus",
    "OrgObject",
    "WhoisDatabase",
    "WhoisServer",
    "parse_snapshot",
    "read_snapshot_file",
    "render_snapshot",
    "write_snapshot_file",
]
