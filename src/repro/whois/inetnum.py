"""``inetnum`` and ``organisation`` objects.

The paper's RDAP pipeline keys on two ``inetnum`` status values:

- ``SUB-ALLOCATED PA`` — space sub-allocated by an LIR to another
  organization (≈4.5k objects in RIPE's June 2020 database), and
- ``ASSIGNED PA`` — space assigned by an LIR to an end-host (≈3.96M
  objects, 91.4 % of them smaller than /24).

Both are delegation-related; everything else (``ALLOCATED PA``, legacy,
PI space) is not.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import WhoisError
from repro.netbase.prefix import IPv4Prefix, format_address


class InetnumStatus(enum.Enum):
    """RIPE ``status:`` attribute values for IPv4 ``inetnum`` objects."""

    ALLOCATED_PA = "ALLOCATED PA"
    ALLOCATED_UNSPECIFIED = "ALLOCATED UNSPECIFIED"
    ASSIGNED_PA = "ASSIGNED PA"
    ASSIGNED_PI = "ASSIGNED PI"
    SUB_ALLOCATED_PA = "SUB-ALLOCATED PA"
    LEGACY = "LEGACY"

    @property
    def is_delegation_related(self) -> bool:
        """True for the two types the paper extracts (§4)."""
        return self in (
            InetnumStatus.ASSIGNED_PA,
            InetnumStatus.SUB_ALLOCATED_PA,
        )

    @classmethod
    def parse(cls, text: str) -> "InetnumStatus":
        for status in cls:
            if status.value == text.strip().upper():
                return status
        raise WhoisError(f"unknown inetnum status: {text!r}")


@dataclass(frozen=True)
class OrgObject:
    """A WHOIS ``organisation`` object (registrant)."""

    handle: str
    name: str

    def __post_init__(self) -> None:
        if not self.handle:
            raise WhoisError("organisation handle cannot be empty")


@dataclass(frozen=True)
class InetnumObject:
    """One ``inetnum`` object: an address range with registration data.

    ``first``/``last`` are inclusive address integers; ranges need not
    be CIDR aligned (real assignments often are not — the paper notes
    91.4 % of ASSIGNED PA entries are *smaller than* /24, many of them
    odd-sized).  ``org_handle`` identifies the registrant,
    ``admin_handle`` the administrative contact; the intra-organization
    filter compares both against the parent block's.
    """

    first: int
    last: int
    netname: str
    status: InetnumStatus
    org_handle: str
    admin_handle: str
    maintainer: str = ""
    created: Optional[datetime.date] = None

    def __post_init__(self) -> None:
        if self.first > self.last:
            raise WhoisError(
                f"inetnum range is empty: {self.range_text()}"
            )
        if not 0 <= self.first <= 0xFFFFFFFF or not 0 <= self.last <= 0xFFFFFFFF:
            raise WhoisError("inetnum range outside IPv4 space")

    # -- derived geometry ------------------------------------------------

    @property
    def num_addresses(self) -> int:
        return self.last - self.first + 1

    @property
    def handle(self) -> str:
        """The range in RIPE's canonical handle form."""
        return self.range_text()

    def range_text(self) -> str:
        return f"{format_address(self.first)} - {format_address(self.last)}"

    def prefixes(self) -> List[IPv4Prefix]:
        """The range as a minimal CIDR list."""
        return IPv4Prefix.from_range(self.first, self.last)

    def primary_prefix(self) -> IPv4Prefix:
        """The single covering prefix used for trie indexing.

        For a CIDR-aligned range this *is* the range; otherwise it is
        the smallest prefix containing it.
        """
        prefixes = self.prefixes()
        if len(prefixes) == 1:
            return prefixes[0]
        length = 32
        while length > 0:
            candidate = IPv4Prefix(self.first, length, strict=False)
            if candidate.contains_address(self.last):
                return candidate
            length -= 1
        return IPv4Prefix(0, 0)

    @property
    def is_cidr_aligned(self) -> bool:
        return len(self.prefixes()) == 1

    def smaller_than(self, length: int) -> bool:
        """True if the range holds fewer addresses than a /``length``.

        The paper ignores all blocks smaller than /24 when querying
        RDAP; this is the predicate behind that filter.
        """
        return self.num_addresses < (1 << (32 - length))

    # -- relations ----------------------------------------------------------

    def contains(self, other: "InetnumObject") -> bool:
        """True if ``other``'s range is inside (or equal to) ours."""
        return self.first <= other.first and other.last <= self.last

    def properly_contains(self, other: "InetnumObject") -> bool:
        return self.contains(other) and (
            self.first != other.first or self.last != other.last
        )

    def same_registrant(self, other: "InetnumObject") -> bool:
        """Intra-organization test: same registrant *or* same admin.

        Mirrors the paper's filter: "we remove intra-organization
        delegations, i.e., where the child block has the same registrant
        or administrator as the parent block."
        """
        return (
            self.org_handle == other.org_handle
            or self.admin_handle == other.admin_handle
        )

    def key(self) -> Tuple[int, int]:
        return (self.first, self.last)
