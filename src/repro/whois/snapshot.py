"""RPSL split-file snapshots (``ripe.db.inetnum``-style).

RIPE publishes nightly database dumps as per-object-type "split" files:
RPSL text blocks separated by blank lines.  The paper uses the
``inetnum`` split file as the input space for its RDAP queries; this
module renders and parses that format so the pipeline runs on files,
not in-memory shortcuts.
"""

from __future__ import annotations

import datetime
import pathlib
from typing import Iterable, Iterator, List, Optional, Union

from repro.errors import DatasetError, ReproError
from repro.ingest.quarantine import ErrorPolicy, QuarantineReport
from repro.netbase.prefix import format_address, parse_address
from repro.whois.database import WhoisDatabase
from repro.whois.inetnum import InetnumObject, InetnumStatus, OrgObject


def _render_inetnum(obj: InetnumObject) -> str:
    """Render one inetnum as an RPSL block."""
    lines = [
        f"inetnum:        {obj.range_text()}",
        f"netname:        {obj.netname}",
        f"status:         {obj.status.value}",
        f"org:            {obj.org_handle}",
        f"admin-c:        {obj.admin_handle}",
    ]
    if obj.maintainer:
        lines.append(f"mnt-by:         {obj.maintainer}")
    if obj.created is not None:
        lines.append(f"created:        {obj.created.isoformat()}")
    lines.append("source:         RIPE")
    return "\n".join(lines)


def render_snapshot(objects: Iterable[InetnumObject]) -> str:
    """Render many inetnums as a split file (blank-line separated)."""
    return "\n\n".join(_render_inetnum(obj) for obj in objects) + "\n"


def _parse_block(block: str) -> InetnumObject:
    attributes = {}
    for line in block.splitlines():
        line = line.rstrip()
        if not line or line.startswith("%") or line.startswith("#"):
            continue
        if ":" not in line:
            raise DatasetError(f"malformed RPSL line: {line!r}")
        key, _, value = line.partition(":")
        attributes[key.strip()] = value.strip()
    try:
        range_text = attributes["inetnum"]
        first_text, _, last_text = range_text.partition("-")
        first = parse_address(first_text.strip())
        last = parse_address(last_text.strip())
        created = None
        if "created" in attributes:
            created = datetime.date.fromisoformat(attributes["created"][:10])
        return InetnumObject(
            first=first,
            last=last,
            netname=attributes.get("netname", ""),
            status=InetnumStatus.parse(attributes["status"]),
            org_handle=attributes.get("org", ""),
            admin_handle=attributes.get("admin-c", ""),
            maintainer=attributes.get("mnt-by", ""),
            created=created,
        )
    except KeyError as exc:
        raise DatasetError(f"inetnum block missing {exc}") from exc
    except Exception as exc:
        if isinstance(exc, DatasetError):
            raise
        raise DatasetError(f"bad inetnum block: {exc}") from exc


def parse_snapshot(
    text: str,
    *,
    policy: ErrorPolicy = ErrorPolicy.STRICT,
    report: Optional[QuarantineReport] = None,
    source: str = "<snapshot>",
) -> Iterator[InetnumObject]:
    """Parse a split file back into inetnum objects.

    ``policy=STRICT`` (default) raises on the first malformed block;
    ``QUARANTINE`` records it in ``report`` (source, 0-based block
    index, reason) and parses on.  Malformed here covers missing-colon
    lines, unknown ``status:`` values, and truncated blocks.
    """
    for index, block in enumerate(
        b for b in text.split("\n\n") if b.strip()
    ):
        try:
            yield _parse_block(block)
        except ReproError as exc:
            if policy is ErrorPolicy.STRICT:
                raise
            if report is not None:
                report.add(source, index, str(exc), kind="rpsl")


def write_snapshot_file(
    objects: Iterable[InetnumObject],
    path: Union[str, pathlib.Path],
) -> str:
    """Write a split file; returns the path written."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_snapshot(objects))
    return str(path)


def read_snapshot_file(
    path: Union[str, pathlib.Path],
    *,
    policy: ErrorPolicy = ErrorPolicy.STRICT,
    report: Optional[QuarantineReport] = None,
) -> List[InetnumObject]:
    """Read a split file into a list of inetnum objects."""
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise DatasetError(
            f"cannot read WHOIS snapshot {path}: {exc}"
        ) from exc
    return list(
        parse_snapshot(
            text, policy=policy, report=report, source=str(path)
        )
    )


def database_from_snapshot(
    objects: Iterable[InetnumObject],
    orgs: Iterable[OrgObject] = (),
    source: str = "RIPE",
) -> WhoisDatabase:
    """Build a queryable database from snapshot objects."""
    database = WhoisDatabase(source)
    for org in orgs:
        database.add_org(org)
    for obj in objects:
        database.add_inetnum(obj)
    return database


__all__ = [
    "database_from_snapshot",
    "parse_snapshot",
    "read_snapshot_file",
    "render_snapshot",
    "write_snapshot_file",
]
