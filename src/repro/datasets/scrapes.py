"""CSV persistence for leasing price scrapes (the Fig. 4 raw data)."""

from __future__ import annotations

import csv
import datetime
import io
import pathlib
from typing import List, Optional, Union

from repro.errors import DatasetError
from repro.ingest.quarantine import ErrorPolicy, QuarantineReport
from repro.market.leasing import ScrapeRecord

_FIELDS = ["date", "provider", "price", "bundles_hosting"]


def write_scrape_csv(
    records: List[ScrapeRecord],
    path: Union[str, pathlib.Path],
) -> str:
    """Write scrape records as CSV; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_FIELDS)
    writer.writeheader()
    for record in records:
        writer.writerow(
            {
                "date": record.date.isoformat(),
                "provider": record.provider,
                "price": f"{record.price:.2f}",
                "bundles_hosting": int(record.bundles_hosting),
            }
        )
    path.write_text(buffer.getvalue(), encoding="utf-8")
    return str(path)


def read_scrape_csv(
    path: Union[str, pathlib.Path],
    *,
    policy: ErrorPolicy = ErrorPolicy.STRICT,
    report: Optional[QuarantineReport] = None,
) -> List[ScrapeRecord]:
    """Read scrape records back from CSV.

    ``policy=STRICT`` (default) raises on the first bad row;
    ``QUARANTINE`` collects bad rows into ``report`` (path, 0-based
    data-row index, reason) and keeps going.
    """
    records: List[ScrapeRecord] = []
    source = str(path)
    with open(path, encoding="utf-8") as handle:
        for index, row in enumerate(csv.DictReader(handle)):
            try:
                records.append(
                    ScrapeRecord(
                        date=datetime.date.fromisoformat(row["date"]),
                        provider=row["provider"],
                        price=float(row["price"]),
                        bundles_hosting=bool(int(row["bundles_hosting"])),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                if policy is ErrorPolicy.STRICT:
                    raise DatasetError(
                        f"bad scrape row {row!r}: {exc}"
                    ) from exc
                if report is not None:
                    report.add(source, index, str(exc), kind="scrapes")
    return records
