"""Dataset generation and loading.

One call — :func:`~repro.datasets.generate.generate_all` — materializes
every data feed of a world onto disk in the formats the real sources
use (RIR transfer JSON, WHOIS split files, CAIDA as2org files,
validated-ROA CSVs, collector JSONL archives, transaction/scrape CSVs),
and the loaders read them back.  Examples and tests use this to prove
the pipelines run on files, not in-memory shortcuts.
"""

from repro.datasets.generate import DatasetManifest, generate_all
from repro.datasets.loaders import (
    load_leasing_scrapes,
    load_priced_transactions,
    load_transfer_ledger,
    load_whois_snapshot,
)
from repro.datasets.scrapes import read_scrape_csv, write_scrape_csv

__all__ = [
    "DatasetManifest",
    "generate_all",
    "load_leasing_scrapes",
    "load_priced_transactions",
    "load_transfer_ledger",
    "load_whois_snapshot",
    "read_scrape_csv",
    "write_scrape_csv",
]
