"""Loaders for the on-disk dataset formats.

Every record-level loader takes an
:class:`~repro.ingest.quarantine.ErrorPolicy`: ``STRICT`` (the
default) preserves fail-fast behaviour, ``QUARANTINE`` sets malformed
records aside into a :class:`~repro.ingest.quarantine.QuarantineReport`
and keeps loading, so one bad record no longer aborts a whole run.
"""

from __future__ import annotations

import json
import pathlib
from typing import List, Optional, Union

from repro.datasets.scrapes import read_scrape_csv
from repro.errors import DatasetError
from repro.ingest.quarantine import ErrorPolicy, QuarantineReport
from repro.market.leasing import ScrapeRecord
from repro.market.transactions import TransactionDataset
from repro.registry.transfers import TransferLedger
from repro.whois.database import WhoisDatabase
from repro.whois.snapshot import read_snapshot_file


def load_transfer_ledger(
    feeds_dir: Union[str, pathlib.Path],
    *,
    policy: ErrorPolicy = ErrorPolicy.STRICT,
    report: Optional[QuarantineReport] = None,
) -> TransferLedger:
    """Rebuild a de-duplicated ledger from all per-RIR feed files.

    Unreadable or syntactically invalid feed files raise
    :class:`~repro.errors.DatasetError` naming the offending path in
    strict mode; in quarantine mode the whole file is quarantined and
    the remaining feeds still load.
    """
    base = pathlib.Path(feeds_dir)
    feed_payloads = []
    feed_sources: List[str] = []
    paths = sorted(base.glob("*_transfers_latest.json"))
    if not paths:
        raise DatasetError(f"no transfer feeds under {base}")
    for path in paths:
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except json.JSONDecodeError as exc:
            if policy is ErrorPolicy.STRICT:
                raise DatasetError(
                    f"invalid JSON in transfer feed {path}: {exc}"
                ) from exc
            if report is not None:
                report.add(
                    str(path), -1, f"invalid JSON: {exc}", kind="transfers"
                )
            continue
        except OSError as exc:
            if policy is ErrorPolicy.STRICT:
                raise DatasetError(
                    f"cannot read transfer feed {path}: {exc}"
                ) from exc
            if report is not None:
                report.add(
                    str(path), -1, f"unreadable: {exc}", kind="transfers"
                )
            continue
        feed_payloads.append(payload)
        feed_sources.append(str(path))
    return TransferLedger.from_feeds(
        feed_payloads, policy=policy, report=report, sources=feed_sources
    )


def load_priced_transactions(
    path: Union[str, pathlib.Path]
) -> TransactionDataset:
    """Load the broker pricing CSV."""
    return TransactionDataset.read_csv(path)


def load_whois_snapshot(
    path: Union[str, pathlib.Path],
    *,
    policy: ErrorPolicy = ErrorPolicy.STRICT,
    report: Optional[QuarantineReport] = None,
) -> WhoisDatabase:
    """Load a WHOIS split file into a queryable database."""
    database = WhoisDatabase("RIPE")
    for obj in read_snapshot_file(path, policy=policy, report=report):
        database.add_inetnum(obj)
    return database


def load_leasing_scrapes(
    path: Union[str, pathlib.Path],
    *,
    policy: ErrorPolicy = ErrorPolicy.STRICT,
    report: Optional[QuarantineReport] = None,
) -> List[ScrapeRecord]:
    """Load the leasing scrape CSV."""
    return read_scrape_csv(path, policy=policy, report=report)
