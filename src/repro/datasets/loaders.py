"""Loaders for the on-disk dataset formats."""

from __future__ import annotations

import json
import pathlib
from typing import List, Union

from repro.datasets.scrapes import read_scrape_csv
from repro.errors import DatasetError
from repro.market.leasing import ScrapeRecord
from repro.market.transactions import TransactionDataset
from repro.registry.transfers import TransferLedger
from repro.whois.database import WhoisDatabase
from repro.whois.snapshot import read_snapshot_file


def load_transfer_ledger(
    feeds_dir: Union[str, pathlib.Path]
) -> TransferLedger:
    """Rebuild a de-duplicated ledger from all per-RIR feed files."""
    base = pathlib.Path(feeds_dir)
    feed_payloads = []
    paths = sorted(base.glob("*_transfers_latest.json"))
    if not paths:
        raise DatasetError(f"no transfer feeds under {base}")
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            feed_payloads.append(json.load(handle))
    return TransferLedger.from_feeds(feed_payloads)


def load_priced_transactions(
    path: Union[str, pathlib.Path]
) -> TransactionDataset:
    """Load the broker pricing CSV."""
    return TransactionDataset.read_csv(path)


def load_whois_snapshot(
    path: Union[str, pathlib.Path]
) -> WhoisDatabase:
    """Load a WHOIS split file into a queryable database."""
    database = WhoisDatabase("RIPE")
    for obj in read_snapshot_file(path):
        database.add_inetnum(obj)
    return database


def load_leasing_scrapes(
    path: Union[str, pathlib.Path]
) -> List[ScrapeRecord]:
    """Load the leasing scrape CSV."""
    return read_scrape_csv(path)
