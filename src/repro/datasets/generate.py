"""Materialize a world's data feeds onto disk."""

from __future__ import annotations

import logging

import datetime
import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.market.leasing import FIRST_SCRAPE, SECOND_WAVE
from repro.datasets.scrapes import write_scrape_csv
from repro.simulation.world import World
from repro.whois.snapshot import write_snapshot_file

logger = logging.getLogger(__name__)


@dataclass
class DatasetManifest:
    """Where everything was written."""

    root: str
    transfer_feeds: Dict[str, str] = field(default_factory=dict)
    priced_transactions: str = ""
    whois_snapshot: str = ""
    as2org_dir: str = ""
    rpki_dir: str = ""
    collector_archive: str = ""
    collector_days: List[str] = field(default_factory=list)
    leasing_scrapes: str = ""

    def to_json(self) -> str:
        return json.dumps(self.__dict__, indent=2, sort_keys=True)


def generate_all(
    world: World,
    directory: Union[str, pathlib.Path],
    *,
    collector_days: int = 3,
    scrape_step_days: int = 7,
    include_rpki: bool = True,
) -> DatasetManifest:
    """Write every feed of ``world`` under ``directory``.

    ``collector_days`` controls how many daily BGP archives are
    materialized (full multi-year archives would be gigabytes; the
    streaming pipelines use the in-memory source instead).
    """
    base = pathlib.Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    manifest = DatasetManifest(root=str(base))

    # RIR transfer feeds (one JSON per RIR).
    feeds = world.transfer_ledger().write_feeds(base / "transfers")
    manifest.transfer_feeds = {
        rir.value: path for rir, path in feeds.items()
    }

    # Broker pricing dataset.
    manifest.priced_transactions = world.priced_transactions().write_csv(
        base / "pricing" / "transactions.csv"
    )

    # WHOIS split file.
    manifest.whois_snapshot = write_snapshot_file(
        world.whois().inetnums(), base / "whois" / "ripe.db.inetnum"
    )

    # as2org quarterly snapshots.
    as2org_dir = base / "as2org"
    world.as2org().write(as2org_dir)
    manifest.as2org_dir = str(as2org_dir)

    # RPKI snapshots (daily CSVs; large, so optional).
    if include_rpki:
        rpki_dir = base / "rpki"
        world.rpki().write_snapshots(rpki_dir)
        manifest.rpki_dir = str(rpki_dir)

    # A few days of collector archives.
    archive_dir = base / "bgp"
    source = world.announcement_source()
    system = world.collector_system()
    date = world.config.bgp_start
    for _ in range(collector_days):
        system.write_day(source(date), date, archive_dir)
        manifest.collector_days.append(date.isoformat())
        date += datetime.timedelta(days=1)
    manifest.collector_archive = str(archive_dir)

    # Leasing price scrapes.
    records = world.scrape_log().scrape_series(
        FIRST_SCRAPE, SECOND_WAVE, scrape_step_days
    )
    records.extend(world.scrape_log().scrape(SECOND_WAVE))
    manifest.leasing_scrapes = write_scrape_csv(
        records, base / "leasing" / "scrapes.csv"
    )

    logger.info("dataset written under %s", base)
    with open(base / "manifest.json", "w", encoding="utf-8") as handle:
        handle.write(manifest.to_json())
    return manifest
